//! Counters, gauges and log2-bucket histograms in a global registry.
//!
//! Metric names follow `<crate>.<stage>.<metric>` (e.g.
//! `device.link.frames_dropped`); span durations land in a histogram
//! named after the span. Handles are `&'static` and lock-free on the
//! hot path (one relaxed atomic op); only registration takes a mutex.
//!
//! With the `enabled` feature off every type here is an inert
//! zero-sized struct and every method an empty `#[inline]` no-op.

#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::Mutex;

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `k`
/// (1..=64) holds values in `[2^(k-1), 2^k)`.
pub const NUM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    value: AtomicU64,
}

/// A last-written f64 value (stored as bits in an atomic).
#[derive(Debug)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    bits: AtomicU64,
}

/// A fixed-bucket log2 histogram of `u64` samples (typically
/// nanoseconds), with p50/p95/p99 extraction.
#[derive(Debug)]
pub struct Histogram {
    #[cfg(feature = "enabled")]
    buckets: [AtomicU64; NUM_BUCKETS],
    #[cfg(feature = "enabled")]
    count: AtomicU64,
    #[cfg(feature = "enabled")]
    sum: AtomicU64,
    #[cfg(feature = "enabled")]
    max: AtomicU64,
}

impl Counter {
    #[cfg(feature = "enabled")]
    fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 in disabled builds).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    #[cfg(feature = "enabled")]
    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Gauge {
    #[cfg(feature = "enabled")]
    fn new() -> Self {
        Self {
            bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    /// Stores a new value.
    #[inline]
    pub fn set(&self, v: f64) {
        #[cfg(feature = "enabled")]
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Last stored value (0.0 in disabled builds).
    #[inline]
    #[must_use]
    pub fn get(&self) -> f64 {
        #[cfg(feature = "enabled")]
        {
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "enabled"))]
        {
            0.0
        }
    }

    #[cfg(feature = "enabled")]
    fn reset(&self) {
        self.set(0.0);
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`, so
/// bucket `k` covers `[2^(k-1), 2^k)`. Ungated: the per-worker
/// histograms in [`crate::local`] share the exact bucket layout in
/// both feature modes.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper edge of bucket `k` (what quantiles report).
#[must_use]
pub fn bucket_upper_edge(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 64 {
        u64::MAX
    } else {
        (1_u64 << k) - 1
    }
}

impl Histogram {
    #[cfg(feature = "enabled")]
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Number of recorded samples.
    #[inline]
    #[must_use]
    pub fn count(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Sum of all samples (wrapping in the absurd-overflow case).
    #[inline]
    #[must_use]
    pub fn sum(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.sum.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Largest recorded sample (exact, not bucketed).
    #[inline]
    #[must_use]
    pub fn max(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.max.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper edge of the bucket
    /// containing the rank-`ceil(q*n)` sample. Returns 0 when empty.
    ///
    /// Rank saturates into `1..=n`, so `q <= 0` reads the smallest
    /// sample's bucket and `q >= 1` the largest. A NaN `q` saturates to
    /// the *top* rank: quantiles feed SLO gates, so malformed input
    /// must fail conservative (report the max), not optimistic (the
    /// min, which a NaN-to-zero cast would silently give).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        #[cfg(feature = "enabled")]
        {
            let n = self.count();
            if n == 0 {
                return 0;
            }
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let rank = if q.is_nan() {
                n
            } else {
                ((q * n as f64).ceil() as u64).clamp(1, n)
            };
            let mut cum = 0_u64;
            for (k, b) in self.buckets.iter().enumerate() {
                cum += b.load(Ordering::Relaxed);
                if cum >= rank {
                    return bucket_upper_edge(k).min(self.max());
                }
            }
            self.max()
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = q;
            0
        }
    }

    /// Folds a per-worker [`crate::LocalHistogram`] into this global
    /// histogram bucket-wise — the publish half of the snapshot/merge
    /// pattern (see [`crate::local`]). No-op in disabled builds.
    pub fn merge_from(&self, local: &crate::LocalHistogram) {
        #[cfg(feature = "enabled")]
        {
            for (k, &b) in local.buckets().iter().enumerate() {
                if b > 0 {
                    self.buckets[k].fetch_add(b, Ordering::Relaxed);
                }
            }
            self.count.fetch_add(local.count(), Ordering::Relaxed);
            self.sum.fetch_add(local.sum(), Ordering::Relaxed);
            self.max.fetch_max(local.max(), Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = local;
    }

    #[cfg(feature = "enabled")]
    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(feature = "enabled")]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

#[cfg(feature = "enabled")]
static REGISTRY: Mutex<BTreeMap<&'static str, Metric>> = Mutex::new(BTreeMap::new());

#[cfg(feature = "enabled")]
fn registry() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Metric>> {
    REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Looks up (registering on first use) the counter named `name`.
/// Prefer the caching [`crate::counter!`] macro at instrumentation
/// sites.
#[must_use]
pub fn counter_handle(name: &'static str) -> &'static Counter {
    #[cfg(feature = "enabled")]
    {
        let mut reg = registry();
        match reg
            .entry(name)
            .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::new()))))
        {
            Metric::Counter(c) => c,
            _ => noop_counter(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        noop_counter()
    }
}

/// Looks up (registering on first use) the gauge named `name`.
#[must_use]
pub fn gauge_handle(name: &'static str) -> &'static Gauge {
    #[cfg(feature = "enabled")]
    {
        let mut reg = registry();
        match reg
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::new()))))
        {
            Metric::Gauge(g) => g,
            _ => noop_gauge(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        noop_gauge()
    }
}

/// Looks up (registering on first use) the histogram named `name`.
#[must_use]
pub fn histogram_handle(name: &'static str) -> &'static Histogram {
    #[cfg(feature = "enabled")]
    {
        let mut reg = registry();
        match reg
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
        {
            Metric::Histogram(h) => h,
            _ => noop_histogram(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        noop_histogram()
    }
}

/// An unregistered counter that discards writes (the disabled-mode
/// handle; also the collision fallback when a name is re-registered as
/// a different metric kind).
#[must_use]
pub fn noop_counter() -> &'static Counter {
    #[cfg(feature = "enabled")]
    {
        static NOOP: std::sync::OnceLock<Counter> = std::sync::OnceLock::new();
        NOOP.get_or_init(Counter::new)
    }
    #[cfg(not(feature = "enabled"))]
    {
        static NOOP: Counter = Counter {};
        &NOOP
    }
}

/// An unregistered gauge that discards writes (see [`noop_counter`]).
#[must_use]
pub fn noop_gauge() -> &'static Gauge {
    #[cfg(feature = "enabled")]
    {
        static NOOP: std::sync::OnceLock<Gauge> = std::sync::OnceLock::new();
        NOOP.get_or_init(Gauge::new)
    }
    #[cfg(not(feature = "enabled"))]
    {
        static NOOP: Gauge = Gauge {};
        &NOOP
    }
}

/// An unregistered histogram that discards writes (see
/// [`noop_counter`]).
#[must_use]
pub fn noop_histogram() -> &'static Histogram {
    #[cfg(feature = "enabled")]
    {
        static NOOP: std::sync::OnceLock<Histogram> = std::sync::OnceLock::new();
        NOOP.get_or_init(Histogram::new)
    }
    #[cfg(not(feature = "enabled"))]
    {
        static NOOP: Histogram = Histogram {};
        &NOOP
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Median (bucket upper edge).
    pub p50: u64,
    /// 95th percentile (bucket upper edge).
    pub p95: u64,
    /// 99th percentile (bucket upper edge).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }
}

/// Point-in-time copy of the whole registry, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(&'static str, f64)>,
    /// `(name, summary)` for every registered histogram.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the named counter, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Summary of the named histogram, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, h)| h)
    }
}

/// Snapshots every registered metric. Empty in disabled builds.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    #[cfg(feature = "enabled")]
    {
        let reg = registry();
        let mut snap = MetricsSnapshot::default();
        for (&name, metric) in reg.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name, c.get())),
                Metric::Gauge(g) => snap.gauges.push((name, g.get())),
                Metric::Histogram(h) => snap.histograms.push((
                    name,
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                    },
                )),
            }
        }
        snap
    }
    #[cfg(not(feature = "enabled"))]
    {
        MetricsSnapshot::default()
    }
}

/// Zeroes every registered metric without unregistering names.
pub fn reset_values() {
    #[cfg(feature = "enabled")]
    for metric in registry().values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Hand-computed: 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2;
        // 4..8 -> bucket 3; 2^k exactly opens bucket k+1.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(2), 3);
        assert_eq!(bucket_upper_edge(10), 1023);
        assert_eq!(bucket_upper_edge(64), u64::MAX);
    }

    #[test]
    fn quantiles_match_hand_computed_values() {
        let _g = lock();
        // Values 1..=100. Cumulative bucket counts: b1:1, b2:3, b3:7,
        // b4:15, b5:31, b6:63, b7:100. p50 rank 50 -> bucket 6 (edge
        // 63); p95 rank 95 -> bucket 7 (edge 127, clamped to max 100);
        // p99 rank 99 -> bucket 7 likewise.
        let h = Histogram::new();
        for v in 1..=100_u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert_eq!(h.quantile(0.50), 63);
        assert_eq!(h.quantile(0.95), 100);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(0.0), 1); // rank clamps to 1 -> bucket 1
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn quantile_rank_pinned_at_small_counts() {
        let _g = lock();
        // Samples of the form 2^k - 1 sit exactly on bucket upper
        // edges, so the reported value identifies the rank unambiguously.
        let s = [15_u64, 1023, 65_535];

        // count = 1: every q reads the only sample, malformed q included.
        let h = Histogram::new();
        h.record(s[0]);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0, -0.5, 1.5, f64::NAN] {
            assert_eq!(h.quantile(q), 15, "count=1 q={q}");
        }

        // count = 2: p50 is rank ceil(0.5*2) = 1 (lower sample — the
        // pinned median-low convention); p95/p99 rank 2.
        let h = Histogram::new();
        h.record(s[0]);
        h.record(s[1]);
        assert_eq!(h.quantile(0.50), 15);
        assert_eq!(h.quantile(0.95), 1023);
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(0.0), 15); // rank saturates up to 1
        assert_eq!(h.quantile(-0.5), 15);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.quantile(1.5), 1023); // rank saturates down to n

        // count = 3: p50 is rank ceil(1.5) = 2, the true median.
        let h = Histogram::new();
        for v in s {
            h.record(v);
        }
        assert_eq!(h.quantile(0.50), 1023);
        assert_eq!(h.quantile(0.95), 65_535);
        assert_eq!(h.quantile(0.99), 65_535);

        // count = 99: p99 rank ceil(98.01) = 99 — the largest sample,
        // not rank 0 and not past the end.
        let h = Histogram::new();
        for v in 1..=99_u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.50), 63); // rank 50 -> bucket edge 63
        assert_eq!(h.quantile(0.95), 99);
        assert_eq!(h.quantile(0.99), 99);

        // count = 100: p99 rank is exactly 99 (q*n lands on an integer,
        // ceil must not bump it to 100's bucket prematurely — both sit
        // in the top bucket here, clamped to max).
        let h = Histogram::new();
        for v in 1..=100_u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(0.01), 1); // rank 1 -> bucket edge 1
    }

    #[test]
    fn nan_quantile_reads_the_top_not_the_bottom() {
        let _g = lock();
        // A NaN q used to cast to rank 1 and report the fastest
        // latency — an SLO gate fed a malformed quantile would always
        // pass. It must fail conservative: report the max.
        let h = Histogram::new();
        h.record(15);
        h.record(1023);
        h.record(65_535);
        assert_eq!(h.quantile(f64::NAN), 65_535);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registry_round_trips_all_kinds() {
        let _g = lock();
        crate::reset();
        counter_handle("obs.test.counter").add(7);
        gauge_handle("obs.test.gauge").set(0.25);
        histogram_handle("obs.test.hist").record(5);
        let snap = snapshot();
        assert_eq!(snap.counter("obs.test.counter"), Some(7));
        assert_eq!(
            snap.gauges
                .iter()
                .find(|(n, _)| *n == "obs.test.gauge")
                .map(|&(_, v)| v),
            Some(0.25)
        );
        let h = snap.histogram("obs.test.hist").unwrap();
        assert_eq!((h.count, h.max), (1, 5));
        // Same handle comes back; values survive re-lookup.
        assert_eq!(counter_handle("obs.test.counter").get(), 7);
        // Kind collision falls back to a noop handle instead of
        // panicking.
        let c = counter_handle("obs.test.gauge");
        c.add(1);
        assert_eq!(snapshot().counter("obs.test.counter"), Some(7));
    }

    #[test]
    fn merge_from_folds_local_histograms_bucket_wise() {
        let _g = lock();
        let h = Histogram::new();
        h.record(10);
        let mut local = crate::LocalHistogram::new();
        local.record(1000);
        local.record(3);
        h.merge_from(&local);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1013);
        assert_eq!(h.max(), 1000);
        // The merged distribution quantiles like one recorded in place.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let _g = lock();
        counter_handle("obs.test.reset").add(3);
        reset_values();
        assert_eq!(snapshot().counter("obs.test.reset"), Some(0));
    }
}
