//! Sharded, durable persistence of session event logs.
//!
//! The fleet scheduler produces one `p2auth.events.v1` log per session
//! (see [`crate::events`]). This module appends those logs to N shard
//! files so a busy serve region never funnels every worker through one
//! file lock, and any single session can later be pulled back out for
//! a bit-identical local repro (`p2auth replay --from-shard`).
//!
//! **Sharding.** A session is routed by the splitmix64 finalizer of its
//! user id ([`shard_of`]) — the *same* function the server's profile
//! store uses, so the shard that holds a user's profile also holds that
//! user's session logs and a hot user shows up as exactly one hot
//! shard in both places.
//!
//! **Record framing.** Each shard file starts with a fixed header
//! (magic, format version, shard index, shard count) followed by
//! length-prefixed records: `len: u32 LE | crc: u32 LE | payload`,
//! where `crc` is the IEEE CRC-32 of the payload. Payloads are opaque
//! bytes here; the fleet writes canonical [`crate::EventLog`]
//! encodings.
//!
//! **Durability model.** Appends are buffered per shard and written
//! through in batches ([`ShardedEventStore::flush_every`] records);
//! there is deliberately no fsync on the hot path. A crash can
//! therefore tear the *tail* of a shard — and nothing else, because
//! appends never rewrite earlier bytes. The reader is built around
//! that failure model: a torn final record is silently dropped (and
//! reported via [`ShardRead::torn_bytes`]), while a CRC mismatch
//! *before* the tail is real corruption and fails loudly. Shards are
//! fully independent: one corrupt shard never prevents reading the
//! others.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic bytes opening every shard file.
pub const SHARD_MAGIC: &[u8; 8] = b"P2SHARD\0";

/// Format version written into the header.
pub const SHARD_VERSION: u32 = 1;

/// Header length in bytes: magic + version + shard index + shard count.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 4;

/// IEEE CRC-32 (the ubiquitous reflected 0xEDB88320 polynomial).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// `key → shard index`: the splitmix64 finalizer, reduced mod
/// `shard_count` (clamped to ≥ 1). This is the profile store's shard
/// function — the two must never drift apart, so the server's store
/// delegates here and a cross-crate test pins the distribution.
#[must_use]
pub fn shard_of(key: u64, shard_count: usize) -> usize {
    let n = shard_count.max(1) as u64;
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    usize::try_from(z % n).unwrap_or(0)
}

/// File name of shard `idx` inside a store directory.
#[must_use]
pub fn shard_file_name(idx: usize) -> String {
    format!("events-{idx:03}.shard")
}

/// File name of the store-level manifest written by
/// [`ShardedEventStore::write_manifest`].
pub const STORE_MANIFEST: &str = "store.manifest.json";

/// Schema tag of the store-level manifest.
pub const STORE_MANIFEST_SCHEMA: &str = "p2auth.store-manifest.v1";

/// FNV-1a 64 digest of a whole file's bytes (the store manifest's
/// per-shard integrity pin).
fn fnv64_file(path: &Path) -> std::io::Result<u64> {
    let bytes = fs::read(path)?;
    let mut d = crate::events::Fnv64::new();
    d.update_bytes(&bytes);
    Ok(d.finish())
}

/// One shard's buffered writer state.
#[derive(Debug)]
struct ShardWriter {
    file: fs::File,
    buf: Vec<u8>,
    pending: usize,
}

/// Append-only sharded store of framed event-log records.
///
/// Thread-safe: each shard has its own lock, so workers writing to
/// different shards never contend.
#[derive(Debug)]
pub struct ShardedEventStore {
    dir: PathBuf,
    flush_every: usize,
    shards: Vec<Mutex<ShardWriter>>,
    appended: AtomicU64,
}

impl ShardedEventStore {
    /// Creates `dir` (and parents) and truncates/initializes one file
    /// per shard, each stamped with the header. `flush_every` is the
    /// per-shard record count between write-throughs (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Any filesystem error creating the directory or shard files.
    pub fn create(dir: &Path, shard_count: usize, flush_every: usize) -> std::io::Result<Self> {
        let shard_count = shard_count.max(1);
        fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(shard_count);
        for idx in 0..shard_count {
            let mut file = fs::File::create(dir.join(shard_file_name(idx)))?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(SHARD_MAGIC);
            header.extend_from_slice(&SHARD_VERSION.to_le_bytes());
            header.extend_from_slice(&u32::try_from(idx).unwrap_or(u32::MAX).to_le_bytes());
            header.extend_from_slice(&u32::try_from(shard_count).unwrap_or(u32::MAX).to_le_bytes());
            file.write_all(&header)?;
            shards.push(Mutex::new(ShardWriter {
                file,
                buf: Vec::new(),
                pending: 0,
            }));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            flush_every: flush_every.max(1),
            shards,
            appended: AtomicU64::new(0),
        })
    }

    /// Re-opens an existing store directory for appending — the warm
    /// restart path. Every `events-*.shard` file is header-validated
    /// (magic + version) and opened in append mode, so records written
    /// before the restart are preserved and new appends land after
    /// them. The shard count is taken from the on-disk headers.
    ///
    /// A torn tail left by a crash is *not* repaired here: appends
    /// after it produce records the reader will also treat as part of
    /// the tear. Callers that recovered a torn store should truncate
    /// the tear first (see [`read_shard_file`]'s `torn_bytes`) — or
    /// accept losing the final record per shard, which is the
    /// documented crash contract.
    ///
    /// # Errors
    ///
    /// Filesystem errors, a directory with no shard files, or a shard
    /// file whose header does not validate.
    pub fn open_append(dir: &Path, flush_every: usize) -> std::io::Result<Self> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("events-") && n.ends_with(".shard"))
            })
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(bad(format!("{}: no shard files to re-open", dir.display())));
        }
        let mut shards = Vec::with_capacity(paths.len());
        for (idx, path) in paths.iter().enumerate() {
            let head = fs::read(path)?;
            if head.len() < HEADER_LEN || &head[..8] != SHARD_MAGIC {
                return Err(bad(format!("{}: not a shard file", path.display())));
            }
            let version = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
            if version != SHARD_VERSION {
                return Err(bad(format!(
                    "{}: unsupported shard version {version}",
                    path.display()
                )));
            }
            if path.file_name().and_then(|n| n.to_str()) != Some(&shard_file_name(idx)) {
                return Err(bad(format!(
                    "{}: shard files are not contiguous (expected {})",
                    path.display(),
                    shard_file_name(idx)
                )));
            }
            let file = fs::OpenOptions::new().append(true).open(path)?;
            shards.push(Mutex::new(ShardWriter {
                file,
                buf: Vec::new(),
                pending: 0,
            }));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            flush_every: flush_every.max(1),
            shards,
            appended: AtomicU64::new(0),
        })
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards (fixed at creation).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records between per-shard write-throughs.
    #[must_use]
    pub fn flush_every(&self) -> usize {
        self.flush_every
    }

    /// Total records appended so far (buffered or written).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Appends one framed record to the shard of `key`. The record is
    /// buffered; every [`Self::flush_every`] records the shard's buffer
    /// is written through (no fsync — see the module docs for the
    /// crash model).
    ///
    /// # Errors
    ///
    /// Filesystem errors from the batched write-through.
    pub fn append(&self, key: u64, payload: &[u8]) -> std::io::Result<()> {
        let shard = shard_of(key, self.shards.len());
        let mut w = self.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let len = u32::try_from(payload.len()).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "record exceeds u32 length",
            )
        })?;
        w.buf.extend_from_slice(&len.to_le_bytes());
        w.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        w.buf.extend_from_slice(payload);
        w.pending += 1;
        self.appended.fetch_add(1, Ordering::Relaxed);
        if w.pending >= self.flush_every {
            let buf = std::mem::take(&mut w.buf);
            w.pending = 0;
            w.file.write_all(&buf)?;
        }
        Ok(())
    }

    /// Writes every shard's buffered records through to its file.
    ///
    /// # Errors
    ///
    /// The first filesystem error encountered (remaining shards are
    /// still attempted).
    pub fn flush(&self) -> std::io::Result<()> {
        let mut first_err = None;
        for shard in &self.shards {
            let mut w = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if !w.buf.is_empty() {
                let buf = std::mem::take(&mut w.buf);
                w.pending = 0;
                if let Err(e) = w.file.write_all(&buf).and_then(|()| w.file.flush()) {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Simulates power loss: every shard's *buffered* (not yet
    /// written-through) records are discarded, and the drop-time flush
    /// is suppressed. Records already written through survive; buffered
    /// ones are gone — exactly the store's documented crash model. Used
    /// by the chaos harness's kill-restart cycles.
    pub fn abandon(self) {
        for shard in &self.shards {
            let mut w = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            w.buf.clear();
            w.pending = 0;
        }
        // Drop now flushes empty buffers: a no-op.
    }

    /// Seals the store with a manifest (`store.manifest.json`) listing
    /// every shard file with its FNV-64 content digest, so a later
    /// [`read_store_dir_verified`] can detect a missing or silently
    /// rewritten shard. Flushes first — the digests pin the bytes a
    /// reader will actually see.
    ///
    /// # Errors
    ///
    /// Filesystem errors from the flush, the digest reads, or the
    /// manifest write.
    pub fn write_manifest(&self) -> std::io::Result<()> {
        self.flush()?;
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"");
        out.push_str(STORE_MANIFEST_SCHEMA);
        out.push_str("\",\n  \"shards\": [\n");
        for idx in 0..self.shards.len() {
            let name = shard_file_name(idx);
            let digest = fnv64_file(&self.dir.join(&name))?;
            if idx > 0 {
                out.push_str(",\n");
            }
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("    {{ \"file\": \"{name}\", \"fnv64\": \"{digest}\" }}"),
            );
        }
        out.push_str("\n  ]\n}\n");
        fs::write(self.dir.join(STORE_MANIFEST), out)
    }
}

impl Drop for ShardedEventStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// One shard file, read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRead {
    /// Shard index from the header.
    pub shard_idx: u32,
    /// Shard count from the header.
    pub shard_count: u32,
    /// Every intact record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of a torn tail record that were dropped (0 for a cleanly
    /// closed shard).
    pub torn_bytes: usize,
}

/// Failure reading a shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Filesystem error (message includes the path).
    Io(String),
    /// The file is not a shard file (bad magic/version) or too short
    /// to hold a header.
    Header(String),
    /// A record *before* the tail failed its CRC — real corruption,
    /// not a crash-torn tail.
    Corrupt {
        /// Zero-based index of the corrupt record.
        record: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// The store manifest disagrees with a shard file: the file is
    /// missing, or its FNV-64 content digest does not match the sealed
    /// value. Scoped to one shard — siblings still load.
    Manifest {
        /// Shard file name the manifest entry refers to.
        file: String,
        /// What disagreed.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "shard i/o error: {e}"),
            PersistError::Header(e) => write!(f, "bad shard header: {e}"),
            PersistError::Corrupt { record, detail } => {
                write!(f, "shard corrupt at record {record}: {detail}")
            }
            PersistError::Manifest { file, detail } => {
                write!(f, "manifest mismatch for {file}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Reads one shard file back, dropping a crash-torn tail record and
/// failing loudly on mid-file corruption (see the module docs for the
/// policy).
///
/// # Errors
///
/// [`PersistError::Io`] / [`PersistError::Header`] /
/// [`PersistError::Corrupt`] as described above.
pub fn read_shard_file(path: &Path) -> Result<ShardRead, PersistError> {
    let data = fs::read(path).map_err(|e| PersistError::Io(format!("{}: {e}", path.display())))?;
    if data.len() < HEADER_LEN {
        return Err(PersistError::Header(format!(
            "{}: {} bytes is shorter than the {HEADER_LEN}-byte header",
            path.display(),
            data.len()
        )));
    }
    if &data[..8] != SHARD_MAGIC {
        return Err(PersistError::Header(format!(
            "{}: bad magic {:02x?}",
            path.display(),
            &data[..8]
        )));
    }
    let u32_at =
        |off: usize| u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]);
    let version = u32_at(8);
    if version != SHARD_VERSION {
        return Err(PersistError::Header(format!(
            "{}: unsupported version {version}",
            path.display()
        )));
    }
    let shard_idx = u32_at(12);
    let shard_count = u32_at(16);

    let mut records = Vec::new();
    let mut off = HEADER_LEN;
    let mut torn_bytes = 0_usize;
    while off < data.len() {
        let rem = data.len() - off;
        if rem < 8 {
            torn_bytes = rem;
            break;
        }
        let len = u32_at(off) as usize;
        let crc = u32_at(off + 4);
        if rem - 8 < len {
            torn_bytes = rem;
            break;
        }
        let payload = &data[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            if off + 8 + len == data.len() {
                // A full-length final record with a bad CRC is a batch
                // write that died mid-flight: torn tail, not corruption.
                torn_bytes = rem;
                break;
            }
            return Err(PersistError::Corrupt {
                record: records.len(),
                detail: format!(
                    "crc mismatch (stored {crc:#010x}, computed {:#010x})",
                    crc32(payload)
                ),
            });
        }
        records.push(payload.to_vec());
        off += 8 + len;
    }
    Ok(ShardRead {
        shard_idx,
        shard_count,
        records,
        torn_bytes,
    })
}

/// Reads every `events-*.shard` file under `dir`, each independently:
/// a corrupt shard yields its own `Err` entry and never prevents the
/// other shards from being read. Results are sorted by file name.
///
/// # Errors
///
/// [`PersistError::Io`] only when the directory itself cannot be
/// listed; per-shard failures are carried in the entries.
#[allow(clippy::type_complexity)]
pub fn read_store_dir(
    dir: &Path,
) -> Result<Vec<(PathBuf, Result<ShardRead, PersistError>)>, PersistError> {
    let entries =
        fs::read_dir(dir).map_err(|e| PersistError::Io(format!("{}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("events-") && n.ends_with(".shard"))
        })
        .collect();
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|p| {
            let read = read_shard_file(&p);
            (p, read)
        })
        .collect())
}

/// [`read_store_dir`] against the sealed manifest
/// (`store.manifest.json`): every shard the manifest lists is checked
/// for presence and FNV-64 content digest *before* being read. A
/// missing file or a digest mismatch yields a typed
/// [`PersistError::Manifest`] entry for that shard only — siblings
/// still load, the same blast-radius rule as mid-file corruption.
///
/// # Errors
///
/// [`PersistError::Io`] when the manifest cannot be read and
/// [`PersistError::Header`] when it does not parse or carries the
/// wrong schema; per-shard failures are carried in the entries.
#[allow(clippy::type_complexity)]
pub fn read_store_dir_verified(
    dir: &Path,
) -> Result<Vec<(PathBuf, Result<ShardRead, PersistError>)>, PersistError> {
    let manifest_path = dir.join(STORE_MANIFEST);
    let text = fs::read_to_string(&manifest_path)
        .map_err(|e| PersistError::Io(format!("{}: {e}", manifest_path.display())))?;
    let doc = crate::json::parse(&text)
        .map_err(|e| PersistError::Header(format!("{}: {e}", manifest_path.display())))?;
    let schema = doc.get("schema").and_then(crate::json::JsonValue::as_str);
    if schema != Some(STORE_MANIFEST_SCHEMA) {
        return Err(PersistError::Header(format!(
            "{}: schema {schema:?} (expected {STORE_MANIFEST_SCHEMA:?})",
            manifest_path.display()
        )));
    }
    let shards = doc
        .get("shards")
        .and_then(crate::json::JsonValue::as_array)
        .ok_or_else(|| {
            PersistError::Header(format!("{}: no \"shards\" array", manifest_path.display()))
        })?;
    let mut out = Vec::with_capacity(shards.len());
    for entry in shards {
        let (Some(file), Some(digest)) = (
            entry.get("file").and_then(crate::json::JsonValue::as_str),
            entry
                .get("fnv64")
                .and_then(crate::json::JsonValue::as_str)
                .and_then(|s| s.parse::<u64>().ok()),
        ) else {
            return Err(PersistError::Header(format!(
                "{}: malformed shard entry",
                manifest_path.display()
            )));
        };
        let path = dir.join(file);
        let read = if !path.exists() {
            Err(PersistError::Manifest {
                file: file.to_string(),
                detail: "listed in the manifest but missing on disk".to_string(),
            })
        } else {
            match fnv64_file(&path) {
                Err(e) => Err(PersistError::Io(format!("{}: {e}", path.display()))),
                Ok(actual) if actual != digest => Err(PersistError::Manifest {
                    file: file.to_string(),
                    detail: format!("fnv64 {actual} does not match sealed {digest}"),
                }),
                Ok(_) => read_shard_file(&path),
            }
        };
        out.push((path, read));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("p2auth_persist_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn shard_of_is_stable_and_spreads() {
        for key in 0..1000_u64 {
            let s = shard_of(key, 16);
            assert!(s < 16);
            assert_eq!(s, shard_of(key, 16));
        }
        let mut hit = [false; 16];
        for key in 0..64_u64 {
            hit[shard_of(key, 16)] = true;
        }
        assert!(hit.iter().filter(|&&h| h).count() >= 12);
        assert_eq!(shard_of(7, 0), 0, "zero shards clamps to one");
    }

    #[test]
    fn write_read_round_trip_across_shards() {
        let dir = tmp_dir("round_trip");
        let store = ShardedEventStore::create(&dir, 4, 2).unwrap();
        for key in 0..20_u64 {
            store
                .append(key, format!("payload-{key}").as_bytes())
                .unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.appended(), 20);

        let mut seen = 0;
        for (path, read) in read_store_dir(&dir).unwrap() {
            let read = read.unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(read.shard_count, 4);
            assert_eq!(read.torn_bytes, 0);
            for payload in &read.records {
                let text = std::str::from_utf8(payload).unwrap();
                let key: u64 = text.strip_prefix("payload-").unwrap().parse().unwrap();
                assert_eq!(shard_of(key, 4), read.shard_idx as usize);
                seen += 1;
            }
        }
        assert_eq!(seen, 20, "every record comes back from exactly one shard");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_earlier_records_survive() {
        let dir = tmp_dir("torn_tail");
        let store = ShardedEventStore::create(&dir, 1, 1).unwrap();
        store.append(0, b"first-record").unwrap();
        store.append(0, b"second-record").unwrap();
        store.flush().unwrap();
        drop(store);

        let path = dir.join(shard_file_name(0));
        let full = fs::read(&path).unwrap();
        // Truncate mid-way through the second record's payload.
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        let read = read_shard_file(&path).unwrap();
        assert_eq!(read.records, vec![b"first-record".to_vec()]);
        assert!(read.torn_bytes > 0, "the torn tail must be reported");

        // Truncating into the 8-byte frame header is also just a tear.
        fs::write(&path, &full[..HEADER_LEN + 3]).unwrap();
        let read = read_shard_file(&path).unwrap();
        assert!(read.records.is_empty());
        assert_eq!(read.torn_bytes, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_fails_loudly() {
        let dir = tmp_dir("corrupt");
        let store = ShardedEventStore::create(&dir, 1, 1).unwrap();
        store.append(0, b"aaaaaaaa").unwrap();
        store.append(0, b"bbbbbbbb").unwrap();
        store.flush().unwrap();
        drop(store);

        let path = dir.join(shard_file_name(0));
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the FIRST record (not the tail).
        bytes[HEADER_LEN + 8] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        match read_shard_file(&path) {
            Err(PersistError::Corrupt { record: 0, .. }) => {}
            other => panic!("expected corruption at record 0, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_append_preserves_and_extends() {
        let dir = tmp_dir("open_append");
        let store = ShardedEventStore::create(&dir, 2, 1).unwrap();
        store.append(0, b"before-restart").unwrap();
        store.append(1, b"also-before").unwrap();
        store.flush().unwrap();
        drop(store);

        let reopened = ShardedEventStore::open_append(&dir, 1).unwrap();
        assert_eq!(reopened.shard_count(), 2);
        reopened.append(0, b"after-restart").unwrap();
        reopened.flush().unwrap();
        drop(reopened);

        let mut payloads: Vec<Vec<u8>> = Vec::new();
        for (_, read) in read_store_dir(&dir).unwrap() {
            payloads.extend(read.unwrap().records);
        }
        payloads.sort();
        assert_eq!(
            payloads,
            vec![
                b"after-restart".to_vec(),
                b"also-before".to_vec(),
                b"before-restart".to_vec()
            ],
            "records from before the restart survive, new ones append"
        );
        // An empty directory is not silently treated as a store.
        let empty = tmp_dir("open_append_empty");
        fs::create_dir_all(&empty).unwrap();
        assert!(ShardedEventStore::open_append(&empty, 1).is_err());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&empty);
    }

    #[test]
    fn abandon_drops_buffered_records_keeps_flushed() {
        let dir = tmp_dir("abandon");
        let store = ShardedEventStore::create(&dir, 1, 100).unwrap();
        store.append(0, b"flushed").unwrap();
        store.flush().unwrap();
        store.append(0, b"buffered-only").unwrap();
        store.abandon();
        let read = read_shard_file(&dir.join(shard_file_name(0))).unwrap();
        assert_eq!(read.records, vec![b"flushed".to_vec()]);
        assert_eq!(read.torn_bytes, 0, "abandon loses whole records, not bytes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trip_verifies_clean_store() {
        let dir = tmp_dir("manifest_ok");
        let store = ShardedEventStore::create(&dir, 3, 1).unwrap();
        for key in 0..9_u64 {
            store.append(key, format!("r{key}").as_bytes()).unwrap();
        }
        store.write_manifest().unwrap();
        drop(store);
        let entries = read_store_dir_verified(&dir).unwrap();
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().all(|(_, r)| r.is_ok()));
        let total: usize = entries
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().records.len())
            .sum();
        assert_eq!(total, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_missing_shard_is_typed_and_scoped() {
        let dir = tmp_dir("manifest_missing");
        let store = ShardedEventStore::create(&dir, 3, 1).unwrap();
        for key in 0..9_u64 {
            store.append(key, format!("r{key}").as_bytes()).unwrap();
        }
        store.write_manifest().unwrap();
        drop(store);
        fs::remove_file(dir.join(shard_file_name(1))).unwrap();
        let entries = read_store_dir_verified(&dir).unwrap();
        assert_eq!(entries.len(), 3, "the missing shard still has an entry");
        match &entries[1].1 {
            Err(PersistError::Manifest { file, .. }) => {
                assert_eq!(file, &shard_file_name(1));
            }
            other => panic!("expected a manifest error, got {other:?}"),
        }
        assert!(entries[0].1.is_ok(), "siblings still load");
        assert!(entries[2].1.is_ok(), "siblings still load");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_digest_mismatch_is_typed_and_scoped() {
        let dir = tmp_dir("manifest_digest");
        let store = ShardedEventStore::create(&dir, 2, 1).unwrap();
        store.append(0, b"sealed-payload").unwrap();
        store.append(1, b"other-shard").unwrap();
        store.write_manifest().unwrap();
        drop(store);
        // Rewrite one byte of shard 0 *with a valid CRC re-frame* not
        // required: any byte change breaks the file digest, which is
        // the point — the manifest catches rewrites CRC framing alone
        // would accept (e.g. a whole-record replacement).
        let p0 = dir.join(shard_file_name(0));
        let mut bytes = fs::read(&p0).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&p0, &bytes).unwrap();
        let entries = read_store_dir_verified(&dir).unwrap();
        assert!(
            matches!(&entries[0].1, Err(PersistError::Manifest { file, .. }) if file == &shard_file_name(0)),
            "digest mismatch must be a typed manifest error: {:?}",
            entries[0].1
        );
        assert!(entries[1].1.is_ok(), "the untouched sibling still loads");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_garbage_manifest_is_loud() {
        let dir = tmp_dir("manifest_absent");
        let store = ShardedEventStore::create(&dir, 1, 1).unwrap();
        drop(store);
        assert!(matches!(
            read_store_dir_verified(&dir),
            Err(PersistError::Io(_))
        ));
        fs::write(dir.join(STORE_MANIFEST), b"not json").unwrap();
        assert!(matches!(
            read_store_dir_verified(&dir),
            Err(PersistError::Header(_))
        ));
        fs::write(
            dir.join(STORE_MANIFEST),
            b"{\"schema\":\"p2auth.store-manifest.v9\",\"shards\":[]}",
        )
        .unwrap();
        assert!(matches!(
            read_store_dir_verified(&dir),
            Err(PersistError::Header(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_a_header_error() {
        let dir = tmp_dir("magic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(shard_file_name(0));
        fs::write(&path, b"NOTASHARDFILE-------").unwrap();
        assert!(matches!(
            read_shard_file(&path),
            Err(PersistError::Header(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
