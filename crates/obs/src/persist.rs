//! Sharded, durable persistence of session event logs.
//!
//! The fleet scheduler produces one `p2auth.events.v1` log per session
//! (see [`crate::events`]). This module appends those logs to N shard
//! files so a busy serve region never funnels every worker through one
//! file lock, and any single session can later be pulled back out for
//! a bit-identical local repro (`p2auth replay --from-shard`).
//!
//! **Sharding.** A session is routed by the splitmix64 finalizer of its
//! user id ([`shard_of`]) — the *same* function the server's profile
//! store uses, so the shard that holds a user's profile also holds that
//! user's session logs and a hot user shows up as exactly one hot
//! shard in both places.
//!
//! **Record framing.** Each shard file starts with a fixed header
//! (magic, format version, shard index, shard count) followed by
//! length-prefixed records: `len: u32 LE | crc: u32 LE | payload`,
//! where `crc` is the IEEE CRC-32 of the payload. Payloads are opaque
//! bytes here; the fleet writes canonical [`crate::EventLog`]
//! encodings.
//!
//! **Durability model.** Appends are buffered per shard and written
//! through in batches ([`ShardedEventStore::flush_every`] records);
//! there is deliberately no fsync on the hot path. A crash can
//! therefore tear the *tail* of a shard — and nothing else, because
//! appends never rewrite earlier bytes. The reader is built around
//! that failure model: a torn final record is silently dropped (and
//! reported via [`ShardRead::torn_bytes`]), while a CRC mismatch
//! *before* the tail is real corruption and fails loudly. Shards are
//! fully independent: one corrupt shard never prevents reading the
//! others.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic bytes opening every shard file.
pub const SHARD_MAGIC: &[u8; 8] = b"P2SHARD\0";

/// Format version written into the header.
pub const SHARD_VERSION: u32 = 1;

/// Header length in bytes: magic + version + shard index + shard count.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 4;

/// IEEE CRC-32 (the ubiquitous reflected 0xEDB88320 polynomial).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// `key → shard index`: the splitmix64 finalizer, reduced mod
/// `shard_count` (clamped to ≥ 1). This is the profile store's shard
/// function — the two must never drift apart, so the server's store
/// delegates here and a cross-crate test pins the distribution.
#[must_use]
pub fn shard_of(key: u64, shard_count: usize) -> usize {
    let n = shard_count.max(1) as u64;
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    usize::try_from(z % n).unwrap_or(0)
}

/// File name of shard `idx` inside a store directory.
#[must_use]
pub fn shard_file_name(idx: usize) -> String {
    format!("events-{idx:03}.shard")
}

/// One shard's buffered writer state.
#[derive(Debug)]
struct ShardWriter {
    file: fs::File,
    buf: Vec<u8>,
    pending: usize,
}

/// Append-only sharded store of framed event-log records.
///
/// Thread-safe: each shard has its own lock, so workers writing to
/// different shards never contend.
#[derive(Debug)]
pub struct ShardedEventStore {
    dir: PathBuf,
    flush_every: usize,
    shards: Vec<Mutex<ShardWriter>>,
    appended: AtomicU64,
}

impl ShardedEventStore {
    /// Creates `dir` (and parents) and truncates/initializes one file
    /// per shard, each stamped with the header. `flush_every` is the
    /// per-shard record count between write-throughs (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Any filesystem error creating the directory or shard files.
    pub fn create(dir: &Path, shard_count: usize, flush_every: usize) -> std::io::Result<Self> {
        let shard_count = shard_count.max(1);
        fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(shard_count);
        for idx in 0..shard_count {
            let mut file = fs::File::create(dir.join(shard_file_name(idx)))?;
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(SHARD_MAGIC);
            header.extend_from_slice(&SHARD_VERSION.to_le_bytes());
            header.extend_from_slice(&u32::try_from(idx).unwrap_or(u32::MAX).to_le_bytes());
            header.extend_from_slice(&u32::try_from(shard_count).unwrap_or(u32::MAX).to_le_bytes());
            file.write_all(&header)?;
            shards.push(Mutex::new(ShardWriter {
                file,
                buf: Vec::new(),
                pending: 0,
            }));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            flush_every: flush_every.max(1),
            shards,
            appended: AtomicU64::new(0),
        })
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards (fixed at creation).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records between per-shard write-throughs.
    #[must_use]
    pub fn flush_every(&self) -> usize {
        self.flush_every
    }

    /// Total records appended so far (buffered or written).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Appends one framed record to the shard of `key`. The record is
    /// buffered; every [`Self::flush_every`] records the shard's buffer
    /// is written through (no fsync — see the module docs for the
    /// crash model).
    ///
    /// # Errors
    ///
    /// Filesystem errors from the batched write-through.
    pub fn append(&self, key: u64, payload: &[u8]) -> std::io::Result<()> {
        let shard = shard_of(key, self.shards.len());
        let mut w = self.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let len = u32::try_from(payload.len()).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "record exceeds u32 length",
            )
        })?;
        w.buf.extend_from_slice(&len.to_le_bytes());
        w.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        w.buf.extend_from_slice(payload);
        w.pending += 1;
        self.appended.fetch_add(1, Ordering::Relaxed);
        if w.pending >= self.flush_every {
            let buf = std::mem::take(&mut w.buf);
            w.pending = 0;
            w.file.write_all(&buf)?;
        }
        Ok(())
    }

    /// Writes every shard's buffered records through to its file.
    ///
    /// # Errors
    ///
    /// The first filesystem error encountered (remaining shards are
    /// still attempted).
    pub fn flush(&self) -> std::io::Result<()> {
        let mut first_err = None;
        for shard in &self.shards {
            let mut w = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if !w.buf.is_empty() {
                let buf = std::mem::take(&mut w.buf);
                w.pending = 0;
                if let Err(e) = w.file.write_all(&buf).and_then(|()| w.file.flush()) {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for ShardedEventStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// One shard file, read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRead {
    /// Shard index from the header.
    pub shard_idx: u32,
    /// Shard count from the header.
    pub shard_count: u32,
    /// Every intact record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of a torn tail record that were dropped (0 for a cleanly
    /// closed shard).
    pub torn_bytes: usize,
}

/// Failure reading a shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Filesystem error (message includes the path).
    Io(String),
    /// The file is not a shard file (bad magic/version) or too short
    /// to hold a header.
    Header(String),
    /// A record *before* the tail failed its CRC — real corruption,
    /// not a crash-torn tail.
    Corrupt {
        /// Zero-based index of the corrupt record.
        record: usize,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "shard i/o error: {e}"),
            PersistError::Header(e) => write!(f, "bad shard header: {e}"),
            PersistError::Corrupt { record, detail } => {
                write!(f, "shard corrupt at record {record}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Reads one shard file back, dropping a crash-torn tail record and
/// failing loudly on mid-file corruption (see the module docs for the
/// policy).
///
/// # Errors
///
/// [`PersistError::Io`] / [`PersistError::Header`] /
/// [`PersistError::Corrupt`] as described above.
pub fn read_shard_file(path: &Path) -> Result<ShardRead, PersistError> {
    let data = fs::read(path).map_err(|e| PersistError::Io(format!("{}: {e}", path.display())))?;
    if data.len() < HEADER_LEN {
        return Err(PersistError::Header(format!(
            "{}: {} bytes is shorter than the {HEADER_LEN}-byte header",
            path.display(),
            data.len()
        )));
    }
    if &data[..8] != SHARD_MAGIC {
        return Err(PersistError::Header(format!(
            "{}: bad magic {:02x?}",
            path.display(),
            &data[..8]
        )));
    }
    let u32_at =
        |off: usize| u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]);
    let version = u32_at(8);
    if version != SHARD_VERSION {
        return Err(PersistError::Header(format!(
            "{}: unsupported version {version}",
            path.display()
        )));
    }
    let shard_idx = u32_at(12);
    let shard_count = u32_at(16);

    let mut records = Vec::new();
    let mut off = HEADER_LEN;
    let mut torn_bytes = 0_usize;
    while off < data.len() {
        let rem = data.len() - off;
        if rem < 8 {
            torn_bytes = rem;
            break;
        }
        let len = u32_at(off) as usize;
        let crc = u32_at(off + 4);
        if rem - 8 < len {
            torn_bytes = rem;
            break;
        }
        let payload = &data[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            if off + 8 + len == data.len() {
                // A full-length final record with a bad CRC is a batch
                // write that died mid-flight: torn tail, not corruption.
                torn_bytes = rem;
                break;
            }
            return Err(PersistError::Corrupt {
                record: records.len(),
                detail: format!(
                    "crc mismatch (stored {crc:#010x}, computed {:#010x})",
                    crc32(payload)
                ),
            });
        }
        records.push(payload.to_vec());
        off += 8 + len;
    }
    Ok(ShardRead {
        shard_idx,
        shard_count,
        records,
        torn_bytes,
    })
}

/// Reads every `events-*.shard` file under `dir`, each independently:
/// a corrupt shard yields its own `Err` entry and never prevents the
/// other shards from being read. Results are sorted by file name.
///
/// # Errors
///
/// [`PersistError::Io`] only when the directory itself cannot be
/// listed; per-shard failures are carried in the entries.
#[allow(clippy::type_complexity)]
pub fn read_store_dir(
    dir: &Path,
) -> Result<Vec<(PathBuf, Result<ShardRead, PersistError>)>, PersistError> {
    let entries =
        fs::read_dir(dir).map_err(|e| PersistError::Io(format!("{}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("events-") && n.ends_with(".shard"))
        })
        .collect();
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|p| {
            let read = read_shard_file(&p);
            (p, read)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("p2auth_persist_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn shard_of_is_stable_and_spreads() {
        for key in 0..1000_u64 {
            let s = shard_of(key, 16);
            assert!(s < 16);
            assert_eq!(s, shard_of(key, 16));
        }
        let mut hit = [false; 16];
        for key in 0..64_u64 {
            hit[shard_of(key, 16)] = true;
        }
        assert!(hit.iter().filter(|&&h| h).count() >= 12);
        assert_eq!(shard_of(7, 0), 0, "zero shards clamps to one");
    }

    #[test]
    fn write_read_round_trip_across_shards() {
        let dir = tmp_dir("round_trip");
        let store = ShardedEventStore::create(&dir, 4, 2).unwrap();
        for key in 0..20_u64 {
            store
                .append(key, format!("payload-{key}").as_bytes())
                .unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.appended(), 20);

        let mut seen = 0;
        for (path, read) in read_store_dir(&dir).unwrap() {
            let read = read.unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(read.shard_count, 4);
            assert_eq!(read.torn_bytes, 0);
            for payload in &read.records {
                let text = std::str::from_utf8(payload).unwrap();
                let key: u64 = text.strip_prefix("payload-").unwrap().parse().unwrap();
                assert_eq!(shard_of(key, 4), read.shard_idx as usize);
                seen += 1;
            }
        }
        assert_eq!(seen, 20, "every record comes back from exactly one shard");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_earlier_records_survive() {
        let dir = tmp_dir("torn_tail");
        let store = ShardedEventStore::create(&dir, 1, 1).unwrap();
        store.append(0, b"first-record").unwrap();
        store.append(0, b"second-record").unwrap();
        store.flush().unwrap();
        drop(store);

        let path = dir.join(shard_file_name(0));
        let full = fs::read(&path).unwrap();
        // Truncate mid-way through the second record's payload.
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        let read = read_shard_file(&path).unwrap();
        assert_eq!(read.records, vec![b"first-record".to_vec()]);
        assert!(read.torn_bytes > 0, "the torn tail must be reported");

        // Truncating into the 8-byte frame header is also just a tear.
        fs::write(&path, &full[..HEADER_LEN + 3]).unwrap();
        let read = read_shard_file(&path).unwrap();
        assert!(read.records.is_empty());
        assert_eq!(read.torn_bytes, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_fails_loudly() {
        let dir = tmp_dir("corrupt");
        let store = ShardedEventStore::create(&dir, 1, 1).unwrap();
        store.append(0, b"aaaaaaaa").unwrap();
        store.append(0, b"bbbbbbbb").unwrap();
        store.flush().unwrap();
        drop(store);

        let path = dir.join(shard_file_name(0));
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the FIRST record (not the tail).
        bytes[HEADER_LEN + 8] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        match read_shard_file(&path) {
            Err(PersistError::Corrupt { record: 0, .. }) => {}
            other => panic!("expected corruption at record 0, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_a_header_error() {
        let dir = tmp_dir("magic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(shard_file_name(0));
        fs::write(&path, b"NOTASHARDFILE-------").unwrap();
        assert!(matches!(
            read_shard_file(&path),
            Err(PersistError::Header(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
