//! Flight recorder: a bounded ring buffer of recent structured events.
//!
//! Hot paths append via [`crate::event!`]; when an authentication
//! session ends in `AuthError`/`Abort`, the caller dumps
//! [`snapshot`] for post-mortem — the last [`CAPACITY`] events across
//! the whole stack (frames fed, NACKs, resyncs, degradation reasons,
//! reject reasons) in arrival order.

use std::fmt;

#[cfg(feature = "enabled")]
use std::collections::VecDeque;
#[cfg(feature = "enabled")]
use std::sync::Mutex;

/// Maximum number of retained events (oldest evicted first).
pub const CAPACITY: usize = 256;

/// A structured event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Borrowed static string.
    Str(&'static str),
    /// Owned string.
    Text(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}
impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Self::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Self::I64(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Self::Str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Text(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::U64(v) => write!(f, "{v}"),
            Self::I64(v) => write!(f, "{v}"),
            Self::F64(v) => write!(f, "{v:.4}"),
            Self::Bool(v) => write!(f, "{v}"),
            Self::Str(v) => write!(f, "{v}"),
            Self::Text(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Time of recording, ns since the observability epoch.
    pub t_ns: u64,
    /// Stage name (`<crate>.<stage>` convention, like span names).
    pub stage: &'static str,
    /// Short event label (what happened).
    pub label: &'static str,
    /// Structured fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6}s] {:<22} {}",
            self.t_ns as f64 / 1e9,
            self.stage,
            self.label
        )?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(feature = "enabled")]
static RING: Mutex<VecDeque<Event>> = Mutex::new(VecDeque::new());

#[cfg(feature = "enabled")]
fn ring() -> std::sync::MutexGuard<'static, VecDeque<Event>> {
    RING.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Appends one event, evicting the oldest past [`CAPACITY`]. Prefer
/// [`crate::event!`], which also compiles out in disabled builds.
pub fn record(stage: &'static str, label: &'static str, fields: Vec<(&'static str, Value)>) {
    #[cfg(feature = "enabled")]
    {
        if !crate::recording() {
            return;
        }
        let ev = Event {
            t_ns: crate::now_ns(),
            stage,
            label,
            fields,
        };
        let mut ring = ring();
        if ring.len() == CAPACITY {
            ring.pop_front();
        }
        ring.push_back(ev);
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (stage, label, fields);
    }
}

/// Copies out the retained events, oldest first. Empty in disabled
/// builds.
#[must_use]
pub fn snapshot() -> Vec<Event> {
    #[cfg(feature = "enabled")]
    {
        ring().iter().cloned().collect()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Number of retained events.
#[must_use]
pub fn len() -> usize {
    #[cfg(feature = "enabled")]
    {
        ring().len()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Drops all retained events.
pub fn clear() {
    #[cfg(feature = "enabled")]
    ring().clear();
}

/// Renders events as a line-per-event post-mortem dump (newest last),
/// keeping at most the trailing `last` events.
#[must_use]
pub fn render_dump(events: &[Event], last: usize) -> String {
    let skip = events.len().saturating_sub(last);
    let mut out = String::new();
    if skip > 0 {
        out.push_str(&format!("... ({skip} earlier events elided)\n"));
    }
    for ev in &events[skip..] {
        out.push_str(&format!("{ev}\n"));
    }
    out
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn ring_wraps_preserving_newest() {
        let _g = lock();
        clear();
        for i in 0..(CAPACITY + 50) {
            crate::event!("obs.test", "tick", i = i);
        }
        let events = snapshot();
        assert_eq!(events.len(), CAPACITY);
        // Oldest retained is #50, newest is #(CAPACITY+49).
        assert_eq!(events[0].fields[0], ("i", Value::U64(50)));
        assert_eq!(
            events[CAPACITY - 1].fields[0],
            ("i", Value::U64((CAPACITY + 49) as u64))
        );
        clear();
    }

    #[test]
    fn event_macro_records_typed_fields() {
        let _g = lock();
        clear();
        crate::event!(
            "obs.test",
            "mixed",
            count = 3_usize,
            ratio = 0.5_f64,
            ok = true,
            tag = "hello",
        );
        let events = snapshot();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.stage, "obs.test");
        assert_eq!(ev.label, "mixed");
        assert_eq!(ev.fields[0], ("count", Value::U64(3)));
        assert_eq!(ev.fields[1], ("ratio", Value::F64(0.5)));
        assert_eq!(ev.fields[2], ("ok", Value::Bool(true)));
        assert_eq!(ev.fields[3], ("tag", Value::Str("hello")));
        clear();
    }

    #[test]
    fn dump_keeps_trailing_events() {
        let _g = lock();
        clear();
        for i in 0..10 {
            crate::event!("obs.test", "d", i = i);
        }
        let dump = render_dump(&snapshot(), 3);
        assert!(dump.contains("7 earlier events elided"));
        assert!(dump.contains("i=9"));
        assert!(!dump.contains("i=6"));
        clear();
    }
}
