//! Exporters: human text report, machine JSON report, span-tree
//! rendering.
//!
//! The JSON report is self-serialized (no serde) against the stable
//! schema **`p2auth.obs.v1`**:
//!
//! ```json
//! {
//!   "schema": "p2auth.obs.v1",
//!   "enabled": true,
//!   "recording": true,
//!   "counters": { "<name>": 0 },
//!   "gauges": { "<name>": 0.0 },
//!   "histograms": { "<name>": { "count": 0, "sum": 0, "max": 0,
//!                                "p50": 0, "p95": 0, "p99": 0 } },
//!   "events": [ { "t_ns": 0, "stage": "", "label": "",
//!                 "fields": { "<key>": 0 } } ]
//! }
//! ```
//!
//! The golden-schema test in `tests/schema.rs` parses this with
//! [`crate::json`] and pins the key set, so the format cannot drift
//! silently.

use crate::metrics::{self, MetricsSnapshot};
use crate::recorder::{self, Event, Value};
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Identifier of the JSON report schema emitted by [`render_json`].
pub const SCHEMA: &str = "p2auth.obs.v1";

/// Point-in-time copy of everything the registry and flight recorder
/// hold.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Compile-time state of the `enabled` feature.
    pub enabled: bool,
    /// Runtime recording switch at collection time.
    pub recording: bool,
    /// All registered metrics.
    pub metrics: MetricsSnapshot,
    /// Flight-recorder contents, oldest first.
    pub events: Vec<Event>,
}

/// Collects a [`Report`] from the global registry and flight recorder.
#[must_use]
pub fn collect() -> Report {
    Report {
        enabled: crate::is_enabled(),
        recording: crate::recording(),
        metrics: metrics::snapshot(),
        events: recorder::snapshot(),
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", v / 1e6)
    } else {
        format!("{:.3}s", v / 1e9)
    }
}

/// Renders the human-readable metrics report.
#[must_use]
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== p2auth-obs report (enabled={}, recording={}) ==",
        report.enabled, report.recording
    );
    if !report.metrics.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, v) in &report.metrics.counters {
            let _ = writeln!(out, "  {name:<44} {v}");
        }
    }
    if !report.metrics.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, v) in &report.metrics.gauges {
            let _ = writeln!(out, "  {name:<44} {v:.4}");
        }
    }
    if !report.metrics.histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        let _ = writeln!(
            out,
            "  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "p50", "p95", "p99", "max"
        );
        for (name, h) in &report.metrics.histograms {
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count,
                fmt_ns(h.p50),
                fmt_ns(h.p95),
                fmt_ns(h.p99),
                fmt_ns(h.max)
            );
        }
    }
    let _ = writeln!(
        out,
        "flight recorder: {} event(s) retained (cap {})",
        report.events.len(),
        recorder::CAPACITY
    );
    out
}

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_value(v: &Value, out: &mut String) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => push_f64(*n, out),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => escape_json(s, out),
        Value::Text(s) => escape_json(s, out),
    }
}

/// Renders the machine-readable JSON report (schema [`SCHEMA`]).
#[must_use]
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"{SCHEMA}\",\"enabled\":{},\"recording\":{},",
        report.enabled, report.recording
    );
    out.push_str("\"counters\":{");
    for (i, (name, v)) in report.metrics.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json(name, &mut out);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in report.metrics.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json(name, &mut out);
        out.push(':');
        push_f64(*v, &mut out);
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in report.metrics.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json(name, &mut out);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.count, h.sum, h.max, h.p50, h.p95, h.p99
        );
    }
    out.push_str("},\"events\":[");
    for (i, ev) in report.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"t_ns\":{},\"stage\":", ev.t_ns);
        escape_json(ev.stage, &mut out);
        out.push_str(",\"label\":");
        escape_json(ev.label, &mut out);
        out.push_str(",\"fields\":{");
        for (j, (k, v)) in ev.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            escape_json(k, &mut out);
            out.push(':');
            push_value(v, &mut out);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Aggregated statistics of one name-path in the span tree.
#[derive(Debug, Clone, Copy, Default)]
struct PathStats {
    count: u64,
    total_ns: u64,
}

/// Resolves each record to its full name path (`root/child/...`) by
/// walking parent ids; spans whose parent was not captured become
/// roots. Returns aggregated `(path, stats)` sorted by path, which
/// places parents directly before their children.
fn aggregate_paths(records: &[SpanRecord]) -> BTreeMap<String, PathStats> {
    let by_id: BTreeMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let mut agg: BTreeMap<String, PathStats> = BTreeMap::new();
    for rec in records {
        let mut names = vec![rec.name];
        let mut cursor = rec.parent;
        while let Some(parent) = by_id.get(&cursor) {
            names.push(parent.name);
            cursor = parent.parent;
        }
        names.reverse();
        let path = names.join("/");
        let entry = agg.entry(path).or_default();
        entry.count += 1;
        entry.total_ns += rec.dur_ns;
    }
    agg
}

/// Renders captured spans as an indented tree, merging same-name
/// siblings (count, total and mean duration per node). Deterministic:
/// siblings are ordered by name.
#[must_use]
pub fn span_tree(records: &[SpanRecord]) -> String {
    let agg = aggregate_paths(records);
    let mut out = String::new();
    for (path, stats) in &agg {
        let depth = path.matches('/').count();
        let name = path.rsplit('/').next().unwrap_or(path);
        let mean = stats.total_ns / stats.count.max(1);
        let _ = writeln!(
            out,
            "{:indent$}{name:<width$} x{:<5} total {:>10}  mean {:>10}",
            "",
            stats.count,
            fmt_ns(stats.total_ns),
            fmt_ns(mean),
            indent = depth * 2,
            width = 36_usize.saturating_sub(depth * 2),
        );
    }
    out
}

/// The sorted, deduplicated name paths of captured spans — the
/// *structure* of the span tree without timings, suitable for golden
/// files.
#[must_use]
pub fn span_paths(records: &[SpanRecord]) -> Vec<String> {
    aggregate_paths(records).into_keys().collect()
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::tests::lock;

    fn rec(id: u64, parent: u64, name: &'static str, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            start_ns: id,
            dur_ns,
        }
    }

    #[test]
    fn span_paths_merge_and_sort() {
        let records = vec![
            rec(1, 0, "root", 100),
            rec(2, 1, "stage_b", 10),
            rec(3, 1, "stage_a", 10),
            rec(4, 1, "stage_a", 30),
            rec(5, 99, "orphan", 5), // parent not captured -> root
        ];
        let paths = span_paths(&records);
        assert_eq!(
            paths,
            vec![
                "orphan".to_string(),
                "root".to_string(),
                "root/stage_a".to_string(),
                "root/stage_b".to_string(),
            ]
        );
        let tree = span_tree(&records);
        assert!(tree.contains("stage_a"));
        assert!(tree.contains("x2"));
        assert!(tree.contains("40ns"));
    }

    #[test]
    fn json_report_round_trips_through_own_parser() {
        let _g = lock();
        crate::reset();
        crate::counter!("obs.test.report_counter").add(2);
        crate::gauge!("obs.test.report_gauge").set(1.5);
        crate::histogram!("obs.test.report_hist").record(9);
        crate::event!("obs.test", "quote\"and\\slash", note = "hi");
        let json = render_json(&collect());
        let doc = crate::json::parse(&json).expect("self-emitted JSON must parse");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("obs.test.report_counter"))
                .and_then(crate::json::JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(
            doc.get("gauges")
                .and_then(|c| c.get("obs.test.report_gauge"))
                .and_then(crate::json::JsonValue::as_f64),
            Some(1.5)
        );
        let h = doc
            .get("histograms")
            .and_then(|c| c.get("obs.test.report_hist"))
            .expect("histogram present");
        assert_eq!(
            h.get("count").and_then(crate::json::JsonValue::as_f64),
            Some(1.0)
        );
        let events = doc.get("events").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0]
                .get("label")
                .and_then(crate::json::JsonValue::as_str),
            Some("quote\"and\\slash")
        );
        crate::reset();
    }

    #[test]
    fn text_report_lists_sections() {
        let _g = lock();
        crate::reset();
        crate::counter!("obs.test.text_counter").incr();
        let text = render_text(&collect());
        assert!(text.contains("p2auth-obs report"));
        assert!(text.contains("obs.test.text_counter"));
        assert!(text.contains("flight recorder"));
        crate::reset();
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
