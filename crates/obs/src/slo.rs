//! Rolling-window SLO / error-budget tracking.
//!
//! A [`SloTracker`] watches a stream of `(latency, error?)` outcomes —
//! the scheduler feeds it one sample per served session — through a
//! ring of 1-second buckets. Two windows are read off the same ring:
//!
//! * the **slow window** (default 60 s) answers "is the p99 within the
//!   objective, and what fraction of the error budget is the current
//!   error rate burning?";
//! * the **fast window** (default 5 s) answers "is it burning *right
//!   now*?".
//!
//! The alert condition is the standard multi-window burn-rate rule: it
//! fires only when **both** windows exceed their burn thresholds, so a
//! single bad second cannot page (the slow window vetoes it) and a
//! long-recovered incident cannot page (the fast window vetoes it).
//! Burn rate is `observed error rate / error budget` — 1.0 means the
//! budget is being consumed exactly as provisioned.
//!
//! Buckets are invalidated lazily by second-stamp, so an idle tracker
//! costs nothing and a burst after a quiet hour does not read stale
//! data. Reports export as text and as the standard `p2auth.obs.v1`
//! JSON document (SLO figures ride in gauges/counters/histograms, so
//! the schema is unchanged).

use std::sync::Mutex;

use crate::local::LocalHistogram;
use crate::report::{self, Report};

/// Objectives and window shape for one tracked SLO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// p99 latency objective in nanoseconds.
    pub p99_objective_ns: u64,
    /// Fraction of sessions allowed to fail (shed or abort) over the
    /// slow window.
    pub error_budget: f64,
    /// Slow-window length in seconds; also the ring size.
    pub window_s: u64,
    /// Fast-window length in seconds (clamped to the slow window).
    pub fast_window_s: u64,
    /// Fast-window burn-rate threshold for the alert.
    pub fast_burn_threshold: f64,
    /// Slow-window burn-rate threshold for the alert.
    pub slow_burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            p99_objective_ns: 500_000_000, // 500 ms
            error_budget: 0.01,
            window_s: 60,
            fast_window_s: 5,
            // The classic page-worthy pairing: the budget is burning
            // 14x too fast and has been for the whole fast window,
            // while the slow window confirms it is not a blip.
            fast_burn_threshold: 14.0,
            slow_burn_threshold: 1.0,
        }
    }
}

/// One second of outcomes.
#[derive(Debug, Clone)]
struct Bucket {
    /// Which wall-second this bucket currently holds; `u64::MAX` marks
    /// a never-written bucket.
    second: u64,
    total: u64,
    errors: u64,
    latency: LocalHistogram,
}

impl Bucket {
    fn empty() -> Self {
        Self {
            second: u64::MAX,
            total: 0,
            errors: 0,
            latency: LocalHistogram::new(),
        }
    }
}

#[derive(Debug)]
struct Ring {
    buckets: Vec<Bucket>,
    /// Highest second ever recorded (drives [`SloTracker::report`]).
    last_second: u64,
}

/// Rolling-window latency / error-rate tracker with burn-rate alerts.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    ring: Mutex<Ring>,
}

/// Point-in-time evaluation of the tracked SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The configuration the report was evaluated against.
    pub cfg: SloConfig,
    /// The second the windows end at.
    pub now_s: u64,
    /// Sessions in the slow window.
    pub total: u64,
    /// Errors (shed or aborted sessions) in the slow window.
    pub errors: u64,
    /// `errors / total` over the slow window (0 when idle).
    pub error_rate: f64,
    /// Slow-window latency quantiles (bucket upper edges).
    pub p50_ns: u64,
    /// 95th percentile over the slow window.
    pub p95_ns: u64,
    /// 99th percentile over the slow window.
    pub p99_ns: u64,
    /// Largest latency in the slow window.
    pub max_ns: u64,
    /// Sessions in the fast window.
    pub fast_total: u64,
    /// Errors in the fast window.
    pub fast_errors: u64,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Whether the slow-window p99 meets the objective.
    pub p99_ok: bool,
    /// Whether both burn thresholds are exceeded (page-worthy).
    pub alert: bool,
}

impl SloTracker {
    /// A tracker with `cfg` (windows clamped to ≥ 1 s, fast ≤ slow).
    #[must_use]
    pub fn new(cfg: SloConfig) -> Self {
        let window_s = cfg.window_s.max(1);
        let cfg = SloConfig {
            window_s,
            fast_window_s: cfg.fast_window_s.clamp(1, window_s),
            ..cfg
        };
        #[allow(clippy::cast_possible_truncation)]
        let len = window_s as usize;
        Self {
            cfg,
            ring: Mutex::new(Ring {
                buckets: vec![Bucket::empty(); len],
                last_second: 0,
            }),
        }
    }

    /// The tracker's configuration (after clamping).
    #[must_use]
    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    /// Records one session outcome stamped with the current wall
    /// clock. In disabled builds the clock reads 0, so everything
    /// lands in second 0 — counts stay correct, windowing degrades.
    pub fn record(&self, latency_ns: u64, error: bool) {
        self.record_at(crate::now_ns() / 1_000_000_000, latency_ns, error);
    }

    /// Records one session outcome at an explicit second (the
    /// deterministic entry point tests and replays use).
    pub fn record_at(&self, second: u64, latency_ns: u64, error: bool) {
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        #[allow(clippy::cast_possible_truncation)]
        let idx = (second % self.cfg.window_s) as usize;
        let bucket = &mut ring.buckets[idx];
        if bucket.second != second {
            *bucket = Bucket::empty();
            bucket.second = second;
        }
        bucket.total += 1;
        if error {
            bucket.errors += 1;
        }
        bucket.latency.record(latency_ns);
        ring.last_second = ring.last_second.max(second);
    }

    /// Evaluates the SLO with windows ending at the last recorded
    /// second.
    #[must_use]
    pub fn report(&self) -> SloReport {
        let last = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .last_second;
        self.report_at(last)
    }

    /// Evaluates the SLO with windows ending at `now_s` inclusive.
    #[must_use]
    pub fn report_at(&self, now_s: u64) -> SloReport {
        let ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let in_window =
            |second: u64, len: u64| second != u64::MAX && second <= now_s && now_s - second < len;
        let mut total = 0_u64;
        let mut errors = 0_u64;
        let mut latency = LocalHistogram::new();
        let mut fast_total = 0_u64;
        let mut fast_errors = 0_u64;
        for b in &ring.buckets {
            if in_window(b.second, self.cfg.window_s) {
                total += b.total;
                errors += b.errors;
                latency.merge(&b.latency);
            }
            if in_window(b.second, self.cfg.fast_window_s) {
                fast_total += b.total;
                fast_errors += b.errors;
            }
        }
        drop(ring);
        #[allow(clippy::cast_precision_loss)]
        let rate = |e: u64, t: u64| if t == 0 { 0.0 } else { e as f64 / t as f64 };
        let burn = |r: f64| {
            if self.cfg.error_budget > 0.0 {
                r / self.cfg.error_budget
            } else if r > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        };
        let error_rate = rate(errors, total);
        let fast_rate = rate(fast_errors, fast_total);
        let p99_ns = latency.quantile(0.99);
        let fast_burn = burn(fast_rate);
        let slow_burn = burn(error_rate);
        SloReport {
            cfg: self.cfg,
            now_s,
            total,
            errors,
            error_rate,
            p50_ns: latency.quantile(0.50),
            p95_ns: latency.quantile(0.95),
            p99_ns,
            max_ns: latency.max(),
            fast_total,
            fast_errors,
            fast_burn,
            slow_burn,
            p99_ok: p99_ns <= self.cfg.p99_objective_ns,
            alert: fast_burn >= self.cfg.fast_burn_threshold
                && slow_burn >= self.cfg.slow_burn_threshold,
        }
    }
}

impl SloReport {
    /// One-glance operator summary.
    #[must_use]
    pub fn render_text(&self) -> String {
        format!(
            "SLO[{}s]: {} sessions, {} errors ({:.2}% of budget {:.2}%) | \
             p99 {} (objective {}, {}) | burn fast {:.2}x slow {:.2}x | {}",
            self.cfg.window_s,
            self.total,
            self.errors,
            self.error_rate * 100.0,
            self.cfg.error_budget * 100.0,
            report::fmt_ns(self.p99_ns),
            report::fmt_ns(self.cfg.p99_objective_ns),
            if self.p99_ok { "ok" } else { "VIOLATED" },
            self.fast_burn,
            self.slow_burn,
            if self.alert { "ALERT" } else { "alert: none" },
        )
    }

    /// The standard `p2auth.obs.v1` JSON document with the SLO figures
    /// carried in `slo.*` gauges, counters and one histogram.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut metrics = crate::metrics::MetricsSnapshot::default();
        metrics.counters.push(("slo.window.errors", self.errors));
        metrics
            .counters
            .push(("slo.window.fast_errors", self.fast_errors));
        metrics
            .counters
            .push(("slo.window.fast_total", self.fast_total));
        metrics.counters.push(("slo.window.total", self.total));
        metrics
            .gauges
            .push(("slo.alert", if self.alert { 1.0 } else { 0.0 }));
        metrics.gauges.push(("slo.burn.fast", self.fast_burn));
        metrics.gauges.push(("slo.burn.slow", self.slow_burn));
        metrics
            .gauges
            .push(("slo.error_budget", self.cfg.error_budget));
        metrics.gauges.push(("slo.error_rate", self.error_rate));
        #[allow(clippy::cast_precision_loss)]
        metrics
            .gauges
            .push(("slo.objective.p99_ns", self.cfg.p99_objective_ns as f64));
        metrics
            .gauges
            .push(("slo.p99_ok", if self.p99_ok { 1.0 } else { 0.0 }));
        #[allow(clippy::cast_precision_loss)]
        metrics
            .gauges
            .push(("slo.window_s", self.cfg.window_s as f64));
        metrics.histograms.push((
            "slo.window.latency_ns",
            crate::metrics::HistogramSnapshot {
                count: self.total,
                sum: 0,
                max: self.max_ns,
                p50: self.p50_ns,
                p95: self.p95_ns,
                p99: self.p99_ns,
            },
        ));
        report::render_json(&Report {
            enabled: crate::is_enabled(),
            recording: crate::recording(),
            metrics,
            events: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            p99_objective_ns: 1_000,
            error_budget: 0.1,
            window_s: 10,
            fast_window_s: 2,
            fast_burn_threshold: 5.0,
            slow_burn_threshold: 1.0,
        }
    }

    #[test]
    fn windows_aggregate_only_recent_seconds() {
        let t = SloTracker::new(cfg());
        for s in 0..20_u64 {
            t.record_at(s, 100, false);
        }
        let r = t.report_at(19);
        assert_eq!(r.total, 10, "slow window holds exactly window_s seconds");
        assert_eq!(r.fast_total, 2);
        assert_eq!(r.errors, 0);
        assert!(r.p99_ok);
        assert!(!r.alert);
        // A report far in the future sees an empty window.
        let r = t.report_at(100);
        assert_eq!(r.total, 0);
        assert_eq!(r.error_rate, 0.0);
    }

    #[test]
    fn stale_buckets_are_invalidated_on_wraparound() {
        let t = SloTracker::new(cfg());
        t.record_at(3, 100, true);
        // Second 13 maps to the same ring slot as second 3; the stale
        // error must not leak into the new second's stats.
        t.record_at(13, 100, false);
        let r = t.report_at(13);
        assert_eq!(r.total, 1);
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn alert_requires_both_windows_burning() {
        let t = SloTracker::new(cfg());
        // Sustained 100% errors: slow burn 10x (>1), fast burn 10x (>5).
        for s in 0..10_u64 {
            for _ in 0..4 {
                t.record_at(s, 50, true);
            }
        }
        let r = t.report_at(9);
        assert_eq!(r.errors, 40);
        assert!(r.slow_burn > 1.0 && r.fast_burn > 5.0);
        assert!(r.alert, "sustained burn must alert");

        // One bad second nine seconds ago: slow window still burning,
        // fast window clean — the fast window vetoes the page.
        let t = SloTracker::new(cfg());
        for _ in 0..40 {
            t.record_at(0, 50, true);
        }
        for s in 1..10_u64 {
            t.record_at(s, 50, false);
        }
        let r = t.report_at(9);
        assert!(r.slow_burn > 1.0, "slow window still sees the incident");
        assert_eq!(r.fast_errors, 0);
        assert!(!r.alert, "recovered incident must not alert");
    }

    #[test]
    fn p99_objective_evaluation() {
        let t = SloTracker::new(cfg());
        for _ in 0..99 {
            t.record_at(5, 100, false);
        }
        let r = t.report_at(5);
        assert!(r.p99_ok);
        for _ in 0..99 {
            t.record_at(5, 1_000_000, false);
        }
        let r = t.report_at(5);
        assert!(!r.p99_ok, "a slow majority must violate the objective");
        assert!(r.p99_ns > 1_000);
    }

    #[test]
    fn zero_budget_burns_infinite_on_any_error() {
        let t = SloTracker::new(SloConfig {
            error_budget: 0.0,
            ..cfg()
        });
        let r = t.report_at(0);
        assert_eq!(r.slow_burn, 0.0, "no traffic, no burn");
        t.record_at(0, 10, true);
        let r = t.report_at(0);
        assert!(r.slow_burn.is_infinite());
    }

    #[test]
    fn report_renders_text_and_schema_json() {
        let t = SloTracker::new(cfg());
        t.record_at(1, 500, false);
        t.record_at(1, 2_000, true);
        let r = t.report_at(1);
        let text = r.render_text();
        assert!(text.contains("SLO[10s]"));
        assert!(text.contains("2 sessions"));
        let json = r.render_json();
        let doc = crate::json::parse(&json).expect("SLO JSON must parse");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(report::SCHEMA),
            "SLO export rides the standard obs schema"
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("slo.window.total"))
                .and_then(crate::json::JsonValue::as_f64),
            Some(2.0)
        );
        assert!(doc
            .get("gauges")
            .and_then(|g| g.get("slo.burn.slow"))
            .is_some());
        assert!(doc
            .get("histograms")
            .and_then(|h| h.get("slo.window.latency_ns"))
            .is_some());
    }

    #[test]
    fn empty_window_reports_zero_burn_and_no_alert() {
        let t = SloTracker::new(cfg());
        let r = t.report_at(0);
        assert_eq!(
            (r.total, r.errors, r.fast_total, r.fast_errors),
            (0, 0, 0, 0)
        );
        assert_eq!(r.error_rate, 0.0);
        assert_eq!(r.fast_burn, 0.0);
        assert_eq!(r.slow_burn, 0.0);
        assert!(!r.alert, "an idle tracker must never page");
        assert!(r.p99_ok, "no samples cannot violate the latency objective");
        // report() with nothing recorded evaluates at second 0: same.
        assert!(!t.report().alert);
    }

    #[test]
    fn burn_exactly_at_both_thresholds_alerts() {
        // cfg(): budget 0.1, fast threshold 5.0, slow threshold 1.0,
        // window 10 s, fast window 2 s. Construct rates that land the
        // burns *exactly* on the thresholds: fast rate 0.5 (burn 5.0),
        // slow rate 0.1 (burn 1.0).
        let t = SloTracker::new(cfg());
        for s in 0..8_u64 {
            for _ in 0..10 {
                t.record_at(s, 100, false);
            }
        }
        for s in 8..10_u64 {
            for i in 0..10 {
                t.record_at(s, 100, i < 5);
            }
        }
        let r = t.report_at(9);
        assert_eq!((r.total, r.errors), (100, 10));
        assert_eq!((r.fast_total, r.fast_errors), (20, 10));
        assert!((r.fast_burn - 5.0).abs() < 1e-12);
        assert!((r.slow_burn - 1.0).abs() < 1e-12);
        assert!(r.alert, "thresholds are inclusive: exactly-at must page");

        // One error fewer in the fast window: fast burn 4.5 < 5.0 —
        // the alert condition is a strict conjunction, so no page.
        let t = SloTracker::new(cfg());
        for s in 0..8_u64 {
            for _ in 0..10 {
                t.record_at(s, 100, false);
            }
        }
        for s in 8..10_u64 {
            for i in 0..10 {
                t.record_at(s, 100, i < 5 && !(s == 9 && i == 4));
            }
        }
        let r = t.report_at(9);
        assert!(r.fast_burn < 5.0 && r.slow_burn < 1.0);
        assert!(!r.alert);
    }

    #[test]
    fn ring_wraps_at_the_default_sixty_seconds() {
        let t = SloTracker::new(SloConfig::default());
        assert_eq!(t.config().window_s, 60);
        // Second 0 and second 60 share a ring slot; the wrap must
        // invalidate, not accumulate.
        for _ in 0..7 {
            t.record_at(0, 100, true);
        }
        t.record_at(60, 100, false);
        let r = t.report_at(60);
        assert_eq!(r.total, 1, "second 0 is outside [1, 60] and evicted");
        assert_eq!(r.errors, 0, "stale errors must not leak across the wrap");
        // Fill a full window across the wrap boundary: every second
        // counted exactly once.
        let t = SloTracker::new(SloConfig::default());
        for s in 30..120_u64 {
            t.record_at(s, 100, false);
        }
        let r = t.report_at(119);
        assert_eq!(r.total, 60, "exactly one window of seconds, despite wrap");
    }

    #[test]
    fn clock_going_backwards_saturates_never_panics() {
        let t = SloTracker::new(cfg());
        t.record_at(100, 100, false);
        // The clock jumps backwards: records must land without panic.
        t.record_at(95, 100, true);
        t.record_at(0, 100, true);
        let r = t.report_at(100);
        assert_eq!(r.total, 2, "second 95 is in [91,100]; second 0 is not");
        assert_eq!(r.errors, 1);
        // A report older than recorded data must not underflow the
        // window arithmetic: buckets ahead of now_s are excluded.
        let r = t.report_at(9);
        assert_eq!(r.total, 1, "only second 0 is visible at now_s = 9");
        assert_eq!(r.errors, 1);
        let r = t.report_at(0);
        assert_eq!(r.total, 1);
        // last_second never rewinds, so report() stays at the high
        //-water mark after the backwards jump.
        assert_eq!(t.report().now_s, 100);
    }

    #[test]
    fn degenerate_windows_clamp() {
        let t = SloTracker::new(SloConfig {
            window_s: 0,
            fast_window_s: 0,
            ..cfg()
        });
        assert_eq!(t.config().window_s, 1);
        assert_eq!(t.config().fast_window_s, 1);
        t.record_at(0, 1, false);
        assert_eq!(t.report().total, 1);
    }
}
