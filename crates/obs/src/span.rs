//! Hierarchical timed spans with a thread-local parent stack.
//!
//! A span opened with [`crate::span!`] becomes the current span of its
//! thread; spans opened while it is current become its children. On
//! drop, the span records its duration into the histogram of the same
//! name and (when capture is on) appends a [`SpanRecord`].
//!
//! `p2auth-par` workers get parentage explicitly: the caller snapshots
//! [`current_ctx`] before fanning out and each worker closure holds an
//! [`adopt`] guard, so spans opened on the worker are children of the
//! caller's span even though they run on a different thread.

#[cfg(feature = "enabled")]
use std::cell::Cell;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

#[cfg(feature = "enabled")]
use crate::metrics::{self, Histogram};

/// One closed span, as captured for span-tree rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (process-global, never 0).
    pub id: u64,
    /// Id of the parent span, or 0 for a root.
    pub parent: u64,
    /// Span name (`<crate>.<stage>`).
    pub name: &'static str,
    /// Start time, ns since the observability epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

#[cfg(feature = "enabled")]
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

#[cfg(feature = "enabled")]
thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

#[cfg(feature = "enabled")]
static CAPTURE_ON: AtomicBool = AtomicBool::new(false);
#[cfg(feature = "enabled")]
static CAPTURED: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

#[cfg(feature = "enabled")]
fn captured() -> std::sync::MutexGuard<'static, Vec<SpanRecord>> {
    CAPTURED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Starts capturing closed spans (clearing any previous capture).
pub fn enable_capture() {
    #[cfg(feature = "enabled")]
    {
        captured().clear();
        CAPTURE_ON.store(true, Ordering::Relaxed);
    }
}

/// Stops capturing and returns everything captured so far. Always
/// empty in disabled builds.
#[must_use]
pub fn take_capture() -> Vec<SpanRecord> {
    #[cfg(feature = "enabled")]
    {
        CAPTURE_ON.store(false, Ordering::Relaxed);
        std::mem::take(&mut *captured())
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Stops and clears capture (part of [`crate::reset`]).
pub fn reset_capture() {
    #[cfg(feature = "enabled")]
    {
        CAPTURE_ON.store(false, Ordering::Relaxed);
        captured().clear();
    }
}

/// A copyable handle to "the span that is current right now", for
/// carrying parentage into `p2auth-par` worker closures.
#[derive(Debug, Clone, Copy)]
pub struct SpanCtx(#[cfg(feature = "enabled")] u64);

/// Snapshots the calling thread's current span as a [`SpanCtx`].
#[inline]
#[must_use]
pub fn current_ctx() -> SpanCtx {
    #[cfg(feature = "enabled")]
    {
        SpanCtx(CURRENT.with(Cell::get))
    }
    #[cfg(not(feature = "enabled"))]
    {
        SpanCtx()
    }
}

/// Forcibly clears the calling thread's span context, returning whether
/// a stale context was actually cleared.
///
/// [`current_ctx`]/[`adopt`] were designed for fork-join workers that
/// die after one task: a leaked [`AdoptGuard`] (a task that panicked
/// into a `catch_unwind`, or plain `mem::forget`) leaves the dead
/// task's parent id in this thread's slot, and on a *pooled* worker the
/// next task's spans would be silently attributed to the previous
/// session's tree. A scheduler must call this at every task-completion
/// boundary so sequential sessions on one worker produce disjoint span
/// trees; the `bool` lets it count leaks it papered over.
#[inline]
pub fn reset_ctx() -> bool {
    #[cfg(feature = "enabled")]
    {
        CURRENT.with(|c| c.replace(0)) != 0
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Guard that makes an adopted [`SpanCtx`] the current span of this
/// thread until dropped (restoring whatever was current before).
#[derive(Debug)]
pub struct AdoptGuard {
    #[cfg(feature = "enabled")]
    prev: u64,
}

/// Adopts `ctx` as the calling thread's current span. Hold the guard
/// for the duration of the worker closure body.
#[inline]
#[must_use]
pub fn adopt(ctx: SpanCtx) -> AdoptGuard {
    #[cfg(feature = "enabled")]
    {
        let prev = CURRENT.with(|c| {
            let p = c.get();
            c.set(ctx.0);
            p
        });
        AdoptGuard { prev }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = ctx;
        AdoptGuard {}
    }
}

#[cfg(feature = "enabled")]
impl Drop for AdoptGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Per-call-site state for [`crate::span!`]: the span name plus a
/// cached histogram handle.
#[derive(Debug)]
pub struct SpanSite {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    hist: OnceLock<&'static Histogram>,
}

impl SpanSite {
    /// Const constructor, usable in a `static`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        #[cfg(feature = "enabled")]
        {
            Self {
                name,
                hist: OnceLock::new(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Self {}
        }
    }

    /// Opens a span at this site. Inert (no timing, no registry
    /// access) when recording is paused or the crate is disabled.
    #[inline]
    #[must_use]
    pub fn enter(&'static self) -> Span {
        #[cfg(feature = "enabled")]
        {
            if !crate::recording() {
                return Span(None);
            }
            let hist = *self
                .hist
                .get_or_init(|| metrics::histogram_handle(self.name));
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            let prev = CURRENT.with(|c| {
                let p = c.get();
                c.set(id);
                p
            });
            let start_ns = crate::now_ns();
            Span(Some(ActiveSpan {
                id,
                prev,
                name: self.name,
                hist,
                start: Instant::now(),
                start_ns,
            }))
        }
        #[cfg(not(feature = "enabled"))]
        {
            Span()
        }
    }
}

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    prev: u64,
    name: &'static str,
    hist: &'static Histogram,
    start: Instant,
    start_ns: u64,
}

/// An open span; closes (records duration, restores the parent) when
/// dropped. Zero-sized in disabled builds.
#[must_use = "a span records its duration when the guard drops"]
#[derive(Debug)]
pub struct Span(#[cfg(feature = "enabled")] Option<ActiveSpan>);

#[cfg(feature = "enabled")]
impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let dur_ns = u64::try_from(a.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        a.hist.record(dur_ns);
        CURRENT.with(|c| c.set(a.prev));
        if CAPTURE_ON.load(Ordering::Relaxed) {
            captured().push(SpanRecord {
                id: a.id,
                parent: a.prev,
                name: a.name,
                start_ns: a.start_ns,
                dur_ns,
            });
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn nesting_attributes_children_to_parents() {
        let _g = lock();
        crate::reset();
        enable_capture();
        {
            let _outer = crate::span!("obs.test.outer");
            {
                let _inner = crate::span!("obs.test.inner");
            }
        }
        let records = take_capture();
        assert_eq!(records.len(), 2);
        // Inner closes first.
        let inner = &records[0];
        let outer = &records[1];
        assert_eq!(inner.name, "obs.test.inner");
        assert_eq!(outer.name, "obs.test.outer");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn span_duration_lands_in_same_named_histogram() {
        let _g = lock();
        crate::reset();
        {
            let _s = crate::span!("obs.test.timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = metrics::snapshot();
        let h = snap.histogram("obs.test.timed").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max >= 2_000_000, "slept 2ms but max = {} ns", h.max);
    }

    #[test]
    fn adopt_carries_parent_across_threads() {
        let _g = lock();
        crate::reset();
        enable_capture();
        let parent_id;
        {
            let _parent = crate::span!("obs.test.parent");
            let ctx = current_ctx();
            parent_id = ctx.0;
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _adopt = adopt(ctx);
                    let _child = crate::span!("obs.test.child");
                });
            });
        }
        let records = take_capture();
        let child = records.iter().find(|r| r.name == "obs.test.child").unwrap();
        assert_eq!(child.parent, parent_id);
        assert_ne!(parent_id, 0);
    }

    #[test]
    fn pooled_worker_sessions_produce_disjoint_trees_after_reset() {
        let _g = lock();
        crate::reset();
        enable_capture();
        let submitter_id;
        {
            let _submitter = crate::span!("obs.test.pool.submitter");
            let ctx = current_ctx();
            submitter_id = ctx.0;
            std::thread::scope(|s| {
                s.spawn(move || {
                    // Session 1 on the pooled worker: adopts the
                    // submitter's context, but the guard is never
                    // dropped — the bug scenario this fix targets.
                    std::mem::forget(adopt(ctx));
                    {
                        let _s1 = crate::span!("obs.test.pool.s1");
                    }
                    // Task-completion boundary: the scheduler resets,
                    // and the reset reports that it caught a leak.
                    assert!(reset_ctx(), "leaked adopt guard went undetected");
                    assert_eq!(current_ctx().0, 0);
                    // Session 2 on the same worker thread must start a
                    // fresh tree, not hang off session 1's parent.
                    {
                        let _s2 = crate::span!("obs.test.pool.s2");
                    }
                    // A clean boundary reports no leak.
                    assert!(!reset_ctx());
                });
            });
        }
        let records = take_capture();
        let s1 = records
            .iter()
            .find(|r| r.name == "obs.test.pool.s1")
            .unwrap();
        let s2 = records
            .iter()
            .find(|r| r.name == "obs.test.pool.s2")
            .unwrap();
        assert_ne!(submitter_id, 0);
        assert_eq!(s1.parent, submitter_id, "session 1 adopted the submitter");
        assert_eq!(s2.parent, 0, "session 2 leaked session 1's parent stack");
    }

    #[test]
    fn adopt_guard_restores_previous_context() {
        let _g = lock();
        let before = current_ctx().0;
        {
            let _s = crate::span!("obs.test.restore");
            let mid = current_ctx().0;
            {
                let _a = adopt(SpanCtx(0));
                assert_eq!(current_ctx().0, 0);
            }
            assert_eq!(current_ctx().0, mid);
        }
        assert_eq!(current_ctx().0, before);
    }
}
