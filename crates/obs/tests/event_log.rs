//! Hardening suite for the `p2auth.events.v1` log, mirroring the
//! `Frame::decode` property tests: arbitrary logs round-trip
//! bit-exactly, arbitrary corruption yields a typed error or an intact
//! decode — never a panic and never a silently shortened log.

use p2auth_obs::events::{EventLog, EventLogError, LogDivergence, SessionEvent, SessionSeeds};
use proptest::prelude::*;

fn arb_f64() -> impl Strategy<Value = f64> {
    // Finite by construction: the log's float policy is finite-only.
    prop_oneof![
        -1.0e9_f64..1.0e9,
        Just(0.0_f64),
        Just(-0.0_f64),
        Just(f64::MIN_POSITIVE),
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    // Covers escaping-relevant content: quotes, backslashes, control
    // characters, non-ASCII.
    prop_oneof![
        "[a-z_]{0,12}",
        Just("with \"quotes\" and \\slashes\\".to_string()),
        Just("ctl:\u{1}\ttab\nnewline".to_string()),
        Just("ünïcode·PPG".to_string()),
    ]
}

fn arb_event() -> impl Strategy<Value = SessionEvent> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>()
        )
            .prop_map(|(attempt, channels, samples, keystrokes, digest)| {
                SessionEvent::SampleBatch {
                    attempt,
                    channels,
                    samples,
                    keystrokes,
                    digest,
                }
            }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(attempt, sent, delivered, bytes, digest)| {
                SessionEvent::LinkFrames {
                    attempt,
                    sent,
                    delivered,
                    bytes,
                    digest,
                }
            }),
        (any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(attempt, corrupt, duplicates, late)| SessionEvent::LinkCorrupt {
                attempt,
                corrupt,
                duplicates,
                late,
            }
        ),
        (any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(attempt, nacks, backoffs, backoff_us)| SessionEvent::LinkNack {
                attempt,
                nacks,
                backoffs,
                backoff_us,
            }
        ),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
            |(attempt, retransmissions, gaps_abandoned)| SessionEvent::LinkRetransmit {
                attempt,
                retransmissions,
                gaps_abandoned,
            }
        ),
        (
            any::<u32>(),
            arb_f64(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(attempt, coverage, expected, received, gaps)| {
                SessionEvent::LinkCoverage {
                    attempt,
                    coverage,
                    expected,
                    received,
                    gaps,
                }
            }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u8>(),
            any::<bool>(),
            prop::option::of(arb_f64()),
            arb_name()
        )
            .prop_map(|(attempt, index, digit, detected, sqi, flags)| {
                SessionEvent::SqiVerdict {
                    attempt,
                    index,
                    digit,
                    detected,
                    sqi,
                    flags,
                }
            }),
        (any::<u32>(), any::<u32>(), any::<u32>(), arb_f64()).prop_map(
            |(attempt, detected, usable, mean_sqi)| SessionEvent::Assessment {
                attempt,
                detected,
                usable,
                mean_sqi,
            }
        ),
        (arb_name(), arb_name(), arb_name(), arb_f64()).prop_map(|(from, to, event, now_s)| {
            SessionEvent::Transition {
                from,
                to,
                event,
                now_s,
            }
        }),
        (arb_name(), arb_f64(), prop::option::of(arb_f64())).prop_map(
            |(state, now_s, deadline_s)| SessionEvent::DeadlineTick {
                state,
                now_s,
                deadline_s,
            }
        ),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u8>(),
            any::<bool>(),
            arb_f64(),
            arb_f64()
        )
            .prop_map(|(attempt, index, digit, passed, score, weight)| {
                SessionEvent::Vote {
                    attempt,
                    index,
                    digit,
                    passed,
                    score,
                    weight,
                }
            }),
        (
            any::<u32>(),
            arb_name(),
            any::<bool>(),
            arb_name(),
            prop::option::of(arb_name()),
            arb_f64(),
            prop::option::of(arb_f64()),
            prop::option::of(any::<u64>())
        )
            .prop_map(
                |(attempt, kind, accepted, case, reason, score, coverage, gap_blocks)| {
                    SessionEvent::Decision {
                        attempt,
                        kind,
                        accepted,
                        case,
                        reason,
                        score,
                        coverage,
                        gap_blocks,
                    }
                }
            ),
        (arb_name(), any::<u32>(), any::<bool>()).prop_map(|(state, attempts, accepted)| {
            SessionEvent::SessionEnd {
                state,
                attempts,
                accepted,
            }
        }),
    ]
}

fn arb_log() -> impl Strategy<Value = EventLog> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec((arb_name(), arb_name()), 0..4),
        prop::collection::vec(arb_event(), 0..24),
    )
        .prop_map(|(population, chaos, nonce, meta, events)| {
            let mut log = EventLog::new(SessionSeeds {
                population,
                chaos,
                nonce,
            });
            for (k, v) in meta {
                log.meta_push(k, v);
            }
            for ev in events {
                log.push(ev);
            }
            log
        })
}

proptest! {
    #[test]
    fn round_trip(log in arb_log()) {
        let text = log.encode();
        let back = EventLog::decode(&text).expect("well-formed log decodes");
        prop_assert_eq!(&back, &log);
        // Encoding is canonical: decode∘encode is a fixed point.
        prop_assert_eq!(back.encode(), text);
    }

    #[test]
    fn truncation_always_yields_a_typed_error(
        log in arb_log(),
        cut_sel in any::<prop::sample::Index>(),
    ) {
        let text = log.encode();
        let cut = cut_sel.index(text.len());
        let mut prefix = &text[..cut];
        // Respect UTF-8 boundaries (a real filesystem truncation is
        // byte-level, but &str slicing must stay on char boundaries;
        // the byte-level case is covered by the bit-flip test on the
        // raw bytes below).
        while !text.is_char_boundary(prefix.len()) && !prefix.is_empty() {
            prefix = &prefix[..prefix.len() - 1];
        }
        if prefix.len() < text.len() {
            // A strict prefix of a JSON document is never a valid
            // document: decode must fail, with a typed error.
            prop_assert!(EventLog::decode(prefix).is_err());
        }
    }

    #[test]
    fn bit_flip_never_panics_and_never_truncates_silently(
        log in arb_log(),
        pos_sel in any::<prop::sample::Index>(),
        bit in 0_u8..8,
    ) {
        let mut bytes = log.encode().into_bytes();
        if bytes.is_empty() {
            return Ok(());
        }
        let pos = pos_sel.index(bytes.len());
        bytes[pos] ^= 1 << bit;
        // The flipped buffer may no longer be UTF-8; both paths must be
        // handled without panicking.
        match std::str::from_utf8(&bytes) {
            Err(_) => {}
            Ok(text) => match EventLog::decode(text) {
                Err(_) => {}
                // If the flip lands in free text (a name, a flag) the
                // document can still be valid — but the event stream
                // must be complete: no silent partial replay.
                Ok(back) => prop_assert_eq!(back.len(), log.len()),
            },
        }
    }

    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = EventLog::decode(text);
        }
    }

    #[test]
    fn garbage_prefix_is_rejected(
        log in arb_log(),
        prefix in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        // Unlike the frame stream there is no resync: a log file with
        // leading garbage is rejected outright.
        let mut buf = prefix;
        buf.extend_from_slice(log.encode().as_bytes());
        if let Ok(text) = std::str::from_utf8(&buf) {
            prop_assert!(EventLog::decode(text).is_err());
        }
    }

    #[test]
    fn dropping_one_event_is_detected(
        log in arb_log().prop_filter("needs events", |l| l.len() >= 2),
        drop_sel in any::<prop::sample::Index>(),
    ) {
        // Splice one event out of the decoded structure and re-encode:
        // the sequence numbers no longer run 0..n, so the decoder
        // reports the splice instead of replaying a shortened session.
        let drop_at = drop_sel.index(log.len());
        let mut spliced = log.clone();
        spliced.events.remove(drop_at);
        if drop_at == log.len() - 1 {
            // Dropping the tail keeps 0..n-1 valid — that case is
            // covered by first_divergence length reporting instead.
            let text = spliced.encode();
            let back = EventLog::decode(&text).expect("prefix log is well-formed");
            match log.first_divergence(&back) {
                Some(LogDivergence::Length { actual, .. }) => {
                    prop_assert_eq!(actual, spliced.len() as u64);
                }
                other => prop_assert!(false, "expected length divergence, got {:?}", other),
            }
        } else {
            let text = spliced.encode();
            prop_assert!(matches!(
                EventLog::decode(&text),
                Err(EventLogError::BrokenSequence { .. })
            ));
        }
    }
}

#[test]
fn empty_input_is_a_parse_error() {
    assert!(matches!(EventLog::decode(""), Err(EventLogError::Parse(_))));
}

#[test]
fn valid_json_wrong_shape_is_a_typed_error() {
    for text in [
        "[]",
        "42",
        "\"log\"",
        "{}",
        "{\"schema\":\"p2auth.events.v1\"}",
    ] {
        let err = EventLog::decode(text).expect_err(text);
        // Any shape error is fine as long as it is typed, not a panic.
        let _ = err.to_string();
    }
}

#[test]
fn error_display_names_the_divergent_position() {
    let mut log = EventLog::new(SessionSeeds::default());
    log.push(SessionEvent::SessionEnd {
        state: "accept".into(),
        attempts: 1,
        accepted: true,
    });
    let text = log.encode().replacen("\"seq\":0", "\"seq\":7", 1);
    let err = EventLog::decode(&text).expect_err("broken seq");
    let msg = err.to_string();
    assert!(msg.contains('0') && msg.contains('7'), "{msg}");
}
