//! Disabled-mode guarantees (`--no-default-features`): every primitive
//! is an inert zero-sized no-op and no state is ever recorded.

#![cfg(not(feature = "enabled"))]

use p2auth_obs::{counter, event, gauge, histogram, span};

#[test]
fn noop_registry_records_nothing() {
    assert!(!p2auth_obs::is_enabled());
    assert!(!p2auth_obs::recording());
    p2auth_obs::set_recording(true);
    assert!(
        !p2auth_obs::recording(),
        "runtime switch is inert when disabled"
    );

    counter!("noop.counter").add(41);
    counter!("noop.counter").incr();
    gauge!("noop.gauge").set(2.5);
    histogram!("noop.hist").record(77);
    {
        let _s = span!("noop.span");
        event!("noop", "event", v = 1_u64);
    }

    assert_eq!(counter!("noop.counter").get(), 0);
    assert_eq!(gauge!("noop.gauge").get(), 0.0);
    assert_eq!(histogram!("noop.hist").count(), 0);
    assert_eq!(histogram!("noop.hist").quantile(0.5), 0);

    let snap = p2auth_obs::metrics::snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());

    assert!(p2auth_obs::recorder::snapshot().is_empty());
    assert_eq!(p2auth_obs::recorder::len(), 0);
    assert!(p2auth_obs::span::take_capture().is_empty());
    assert_eq!(p2auth_obs::now_ns(), 0);
}

#[test]
fn noop_primitives_are_zero_sized() {
    assert_eq!(std::mem::size_of::<p2auth_obs::Span>(), 0);
    assert_eq!(std::mem::size_of::<p2auth_obs::SpanCtx>(), 0);
    assert_eq!(std::mem::size_of::<p2auth_obs::AdoptGuard>(), 0);
    assert_eq!(std::mem::size_of::<p2auth_obs::metrics::Counter>(), 0);
    assert_eq!(std::mem::size_of::<p2auth_obs::metrics::Gauge>(), 0);
    assert_eq!(std::mem::size_of::<p2auth_obs::metrics::Histogram>(), 0);

    // The JSON exporter still renders a valid (empty) document.
    let json = p2auth_obs::report::render_json(&p2auth_obs::report::collect());
    let doc = p2auth_obs::json::parse(&json).expect("valid JSON when disabled");
    assert_eq!(
        doc.get("enabled")
            .and_then(p2auth_obs::json::JsonValue::as_bool),
        Some(false)
    );
}
