//! Span parentage must survive `p2auth-par`'s scoped worker threads:
//! a caller snapshots its context, workers adopt it, and every span a
//! worker opens is attributed to the caller's span.

#![cfg(feature = "enabled")]

use p2auth_obs::{adopt, current_ctx, span};
use p2auth_par::par_map;
use std::sync::Mutex;

/// Serializes tests sharing the global capture buffer.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn par_workers_attribute_spans_to_adopting_parent() {
    let _serial = lock();
    p2auth_obs::reset();
    p2auth_obs::span::enable_capture();

    let items: Vec<u64> = (0..64).collect();
    let out: Vec<u64>;
    {
        let _parent = span!("test.parent");
        let ctx = current_ctx();
        out = par_map(&items, |&i| {
            let _g = adopt(ctx);
            let _child = span!("test.child");
            // Burn a few cycles so spans have nonzero duration.
            (0..100).fold(i, |acc, x| acc.wrapping_add(x))
        });
    }
    assert_eq!(out.len(), items.len());

    let records = p2auth_obs::span::take_capture();
    let parent = records
        .iter()
        .find(|r| r.name == "test.parent")
        .expect("parent span captured");
    let children: Vec<_> = records.iter().filter(|r| r.name == "test.child").collect();
    assert_eq!(children.len(), items.len());
    for child in &children {
        assert_eq!(
            child.parent, parent.id,
            "worker span must be attributed to the adopted parent"
        );
    }

    // The rendered structure shows the nesting.
    let paths = p2auth_obs::report::span_paths(&records);
    assert_eq!(
        paths,
        vec![
            "test.parent".to_string(),
            "test.parent/test.child".to_string()
        ]
    );

    // Child time also landed in the histogram named after the span.
    let snap = p2auth_obs::metrics::snapshot();
    let h = snap.histogram("test.child").expect("child histogram");
    assert_eq!(h.count, items.len() as u64);
}

#[test]
fn unadopted_threads_start_at_root() {
    let _serial = lock();
    p2auth_obs::reset();
    p2auth_obs::span::enable_capture();

    {
        let _parent = span!("test.lone_parent");
        // A fresh thread that does NOT adopt the caller's context: its
        // spans are roots (the thread-local parent stack starts empty).
        std::thread::spawn(|| {
            let _child = span!("test.lone_child");
        })
        .join()
        .expect("worker thread");
    }

    let records = p2auth_obs::span::take_capture();
    let child = records
        .iter()
        .find(|r| r.name == "test.lone_child")
        .expect("child captured");
    assert_eq!(
        child.parent, 0,
        "without adopt(), a new thread's spans are roots"
    );
}
