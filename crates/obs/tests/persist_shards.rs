//! Durability contract of the sharded event-log store: a crash that
//! tears the tail of one shard file loses at most the unflushed tail
//! of *that* shard — every fully-framed record before it, and every
//! other shard, reads back byte-identical. Corruption is the same
//! story: one rotten shard never poisons its neighbours.

use std::fs;
use std::path::PathBuf;

use p2auth_obs::persist::{self, shard_of, PersistError, ShardedEventStore, HEADER_LEN};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "p2auth_persist_shards_{tag}_{}",
        std::process::id()
    ));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Deterministic payload for key `k`, long enough to span the torn
/// cut points the tests make.
fn payload(k: u64) -> Vec<u8> {
    format!("record-{k}:{}", "x".repeat(40 + (k as usize % 13))).into_bytes()
}

fn write_store(dir: &PathBuf, shards: usize, keys: &[u64]) {
    let store = ShardedEventStore::create(dir, shards, 4).expect("create store");
    for &k in keys {
        store.append(k, &payload(k)).expect("append");
    }
    store.flush().expect("flush");
}

/// Read every record back, grouped by shard index.
fn read_all(dir: &PathBuf) -> Vec<(PathBuf, Result<persist::ShardRead, PersistError>)> {
    persist::read_store_dir(dir).expect("list store dir")
}

#[test]
fn crash_truncation_loses_only_the_torn_tail_of_one_shard() {
    let dir = scratch_dir("truncate");
    let keys: Vec<u64> = (0..40).collect();
    write_store(&dir, 4, &keys);

    // Pick the busiest shard and cut its file mid-record — the moment
    // a crash would leave behind.
    let victim = read_all(&dir)
        .into_iter()
        .map(|(p, r)| (p, r.expect("clean store reads")))
        .max_by_key(|(_, r)| r.records.len())
        .expect("non-empty store");
    let victim_path = victim.0.clone();
    let full_len = fs::metadata(&victim_path).expect("stat").len();
    fs::File::options()
        .write(true)
        .open(&victim_path)
        .expect("open")
        .set_len(full_len - 7)
        .expect("truncate");

    let mut total = 0_usize;
    for (path, read) in read_all(&dir) {
        let read = read.expect("truncation must degrade, not error");
        if path == victim_path {
            assert_eq!(
                read.records.len(),
                victim.1.records.len() - 1,
                "exactly the torn final record is dropped"
            );
            assert!(read.torn_bytes > 0, "torn bytes must be reported");
        } else {
            assert_eq!(read.torn_bytes, 0);
        }
        // Every surviving record is byte-identical to what was written.
        for rec in &read.records {
            let text = std::str::from_utf8(rec).expect("utf8");
            let k: u64 = text
                .strip_prefix("record-")
                .and_then(|t| t.split(':').next())
                .and_then(|n| n.parse().ok())
                .expect("well-formed payload");
            assert_eq!(rec, &payload(k), "payload for key {k} corrupted");
            assert_eq!(
                read.shard_idx as usize,
                shard_of(k, 4),
                "record in wrong shard"
            );
        }
        total += read.records.len();
    }
    assert_eq!(total, keys.len() - 1);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_in_one_shard_never_poisons_the_others() {
    let dir = scratch_dir("isolate");
    let keys: Vec<u64> = (0..40).collect();
    write_store(&dir, 4, &keys);

    // Rot a byte in the middle of the first record of one shard (not
    // the tail, so the torn-tail policy can't rescue it).
    let (victim_path, victim_read) = read_all(&dir)
        .into_iter()
        .map(|(p, r)| (p, r.expect("clean store reads")))
        .find(|(_, r)| r.records.len() >= 2)
        .expect("a shard with at least two records");
    let mut bytes = fs::read(&victim_path).expect("read shard");
    bytes[HEADER_LEN + 8 + 3] ^= 0xFF;
    fs::write(&victim_path, &bytes).expect("write corrupted shard");

    let mut clean_shards = 0;
    let mut poisoned = 0;
    for (path, read) in read_all(&dir) {
        if path == victim_path {
            match read {
                Err(PersistError::Corrupt { record, .. }) => {
                    assert_eq!(record, 0, "first record is the corrupted one");
                    poisoned += 1;
                }
                other => panic!("corrupted shard must report Corrupt, got {other:?}"),
            }
        } else {
            let read = read.expect("sibling shards unaffected");
            assert_eq!(read.torn_bytes, 0);
            clean_shards += 1;
        }
    }
    assert_eq!(poisoned, 1);
    assert_eq!(clean_shards, 3);
    assert!(victim_read.records.len() >= 2);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_routing_matches_the_store_layout() {
    let dir = scratch_dir("routing");
    let keys: Vec<u64> = (100..140).collect();
    write_store(&dir, 8, &keys);
    for (_, read) in read_all(&dir) {
        let read = read.expect("clean store reads");
        assert_eq!(read.shard_count, 8);
        for rec in &read.records {
            let text = std::str::from_utf8(rec).expect("utf8");
            let k: u64 = text
                .strip_prefix("record-")
                .and_then(|t| t.split(':').next())
                .and_then(|n| n.parse().ok())
                .expect("well-formed payload");
            assert_eq!(
                read.shard_idx as usize,
                shard_of(k, 8),
                "key {k} persisted outside its shard"
            );
        }
    }
    fs::remove_dir_all(&dir).ok();
}
