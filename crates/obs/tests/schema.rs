//! Golden-schema test: the JSON exporter's output is parsed with the
//! crate's own dependency-free parser and its key set pinned, so the
//! documented `p2auth.obs.v1` format cannot drift silently.

#![cfg(feature = "enabled")]

use p2auth_obs::json::{parse, JsonValue};
use p2auth_obs::report;

#[test]
fn json_report_matches_documented_schema() {
    p2auth_obs::reset();
    p2auth_obs::counter!("schema.test.counter").add(5);
    p2auth_obs::gauge!("schema.test.gauge").set(0.75);
    p2auth_obs::histogram!("schema.test.hist").record(1234);
    p2auth_obs::event!("schema.test", "probe", seq = 1_u64, ok = true, note = "x");

    let json = report::render_json(&report::collect());
    let doc = parse(&json).expect("report must be valid JSON");

    // Top-level key set, exactly.
    let top = doc.as_object().expect("top level is an object");
    let keys: Vec<&str> = top.keys().map(String::as_str).collect();
    assert_eq!(
        keys,
        vec![
            "counters",
            "enabled",
            "events",
            "gauges",
            "histograms",
            "recording",
            "schema"
        ],
        "top-level schema keys drifted"
    );
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some(report::SCHEMA)
    );
    assert_eq!(doc.get("enabled").and_then(JsonValue::as_bool), Some(true));

    // Every histogram entry carries exactly the documented summary.
    let hists = doc
        .get("histograms")
        .and_then(JsonValue::as_object)
        .expect("histograms object");
    let h = hists.get("schema.test.hist").expect("registered histogram");
    let hkeys: Vec<&str> = h
        .as_object()
        .expect("histogram summary is an object")
        .keys()
        .map(String::as_str)
        .collect();
    assert_eq!(
        hkeys,
        vec!["count", "max", "p50", "p95", "p99", "sum"],
        "histogram schema keys drifted"
    );
    assert_eq!(h.get("count").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(h.get("max").and_then(JsonValue::as_f64), Some(1234.0));

    // Counters / gauges are flat name -> number maps.
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("schema.test.counter"))
            .and_then(JsonValue::as_f64),
        Some(5.0)
    );
    assert_eq!(
        doc.get("gauges")
            .and_then(|c| c.get("schema.test.gauge"))
            .and_then(JsonValue::as_f64),
        Some(0.75)
    );

    // Events carry t_ns / stage / label / fields, exactly.
    let events = doc
        .get("events")
        .and_then(JsonValue::as_array)
        .expect("events array");
    let ev = events
        .iter()
        .find(|e| e.get("stage").and_then(JsonValue::as_str) == Some("schema.test"))
        .expect("recorded event present");
    let ekeys: Vec<&str> = ev
        .as_object()
        .expect("event is an object")
        .keys()
        .map(String::as_str)
        .collect();
    assert_eq!(
        ekeys,
        vec!["fields", "label", "stage", "t_ns"],
        "event schema keys drifted"
    );
    let fields = ev
        .get("fields")
        .and_then(JsonValue::as_object)
        .expect("fields object");
    assert_eq!(fields.get("seq").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(fields.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(fields.get("note").and_then(JsonValue::as_str), Some("x"));

    p2auth_obs::reset();
}
