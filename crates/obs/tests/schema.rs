//! Golden-schema test: the JSON exporter's output is parsed with the
//! crate's own dependency-free parser and its key set pinned, so the
//! documented `p2auth.obs.v1` format cannot drift silently.

#![cfg(feature = "enabled")]

use p2auth_obs::json::{parse, JsonValue};
use p2auth_obs::report;

#[test]
fn json_report_matches_documented_schema() {
    p2auth_obs::reset();
    p2auth_obs::counter!("schema.test.counter").add(5);
    p2auth_obs::gauge!("schema.test.gauge").set(0.75);
    p2auth_obs::histogram!("schema.test.hist").record(1234);
    p2auth_obs::event!("schema.test", "probe", seq = 1_u64, ok = true, note = "x");

    let json = report::render_json(&report::collect());
    let doc = parse(&json).expect("report must be valid JSON");

    // Top-level key set, exactly.
    let top = doc.as_object().expect("top level is an object");
    let keys: Vec<&str> = top.keys().map(String::as_str).collect();
    assert_eq!(
        keys,
        vec![
            "counters",
            "enabled",
            "events",
            "gauges",
            "histograms",
            "recording",
            "schema"
        ],
        "top-level schema keys drifted"
    );
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some(report::SCHEMA)
    );
    assert_eq!(doc.get("enabled").and_then(JsonValue::as_bool), Some(true));

    // Every histogram entry carries exactly the documented summary.
    let hists = doc
        .get("histograms")
        .and_then(JsonValue::as_object)
        .expect("histograms object");
    let h = hists.get("schema.test.hist").expect("registered histogram");
    let hkeys: Vec<&str> = h
        .as_object()
        .expect("histogram summary is an object")
        .keys()
        .map(String::as_str)
        .collect();
    assert_eq!(
        hkeys,
        vec!["count", "max", "p50", "p95", "p99", "sum"],
        "histogram schema keys drifted"
    );
    assert_eq!(h.get("count").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(h.get("max").and_then(JsonValue::as_f64), Some(1234.0));

    // Counters / gauges are flat name -> number maps.
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("schema.test.counter"))
            .and_then(JsonValue::as_f64),
        Some(5.0)
    );
    assert_eq!(
        doc.get("gauges")
            .and_then(|c| c.get("schema.test.gauge"))
            .and_then(JsonValue::as_f64),
        Some(0.75)
    );

    // Events carry t_ns / stage / label / fields, exactly.
    let events = doc
        .get("events")
        .and_then(JsonValue::as_array)
        .expect("events array");
    let ev = events
        .iter()
        .find(|e| e.get("stage").and_then(JsonValue::as_str) == Some("schema.test"))
        .expect("recorded event present");
    let ekeys: Vec<&str> = ev
        .as_object()
        .expect("event is an object")
        .keys()
        .map(String::as_str)
        .collect();
    assert_eq!(
        ekeys,
        vec!["fields", "label", "stage", "t_ns"],
        "event schema keys drifted"
    );
    let fields = ev
        .get("fields")
        .and_then(JsonValue::as_object)
        .expect("fields object");
    assert_eq!(fields.get("seq").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(fields.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(fields.get("note").and_then(JsonValue::as_str), Some("x"));

    p2auth_obs::reset();
}

/// Escaping audit: metric and span names are caller-controlled static
/// strings, so the exporter must survive names built to break JSON —
/// embedded quotes, backslashes, newlines, tabs, and raw control
/// bytes. The report is built directly (no global registry) and must
/// round-trip byte-identically through the crate's own parser.
#[test]
fn hostile_metric_and_span_names_round_trip_through_json() {
    const HOSTILE_COUNTER: &str = "evil\"quote\\back\nline";
    const HOSTILE_GAUGE: &str = "ctrl\u{1}\u{1f}tab\tend";
    const HOSTILE_HIST: &str = "carriage\rreturn\"\"";
    const HOSTILE_STAGE: &str = "stage\\\"inject\": {\"not\": 1}";
    const HOSTILE_LABEL: &str = "label\u{0}nul";
    const HOSTILE_VALUE: &str = "value with \"all\\ of\nit\t\u{2}";

    let mut metrics = p2auth_obs::metrics::MetricsSnapshot::default();
    metrics.counters.push((HOSTILE_COUNTER, 7));
    metrics.gauges.push((HOSTILE_GAUGE, 0.5));
    metrics.histograms.push((
        HOSTILE_HIST,
        p2auth_obs::metrics::HistogramSnapshot {
            count: 1,
            sum: 10,
            max: 10,
            p50: 10,
            p95: 10,
            p99: 10,
        },
    ));
    let report = report::Report {
        enabled: true,
        recording: true,
        metrics,
        events: vec![p2auth_obs::recorder::Event {
            t_ns: 1,
            stage: HOSTILE_STAGE,
            label: HOSTILE_LABEL,
            fields: vec![("note", p2auth_obs::recorder::Value::Str(HOSTILE_VALUE))],
        }],
    };

    let json = report::render_json(&report);
    let doc = parse(&json).expect("hostile names must still produce valid JSON");
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get(HOSTILE_COUNTER))
            .and_then(JsonValue::as_f64),
        Some(7.0),
        "counter name failed to round-trip: {json}"
    );
    assert_eq!(
        doc.get("gauges")
            .and_then(|g| g.get(HOSTILE_GAUGE))
            .and_then(JsonValue::as_f64),
        Some(0.5)
    );
    assert_eq!(
        doc.get("histograms")
            .and_then(|h| h.get(HOSTILE_HIST))
            .and_then(|h| h.get("count"))
            .and_then(JsonValue::as_f64),
        Some(1.0)
    );
    let ev = &doc.get("events").and_then(JsonValue::as_array).unwrap()[0];
    assert_eq!(
        ev.get("stage").and_then(JsonValue::as_str),
        Some(HOSTILE_STAGE),
        "span stage must not be able to inject structure"
    );
    assert_eq!(
        ev.get("label").and_then(JsonValue::as_str),
        Some(HOSTILE_LABEL)
    );
    assert_eq!(
        ev.get("fields")
            .and_then(|f| f.get("note"))
            .and_then(JsonValue::as_str),
        Some(HOSTILE_VALUE)
    );
}

/// The same hostility pushed through the event-log metadata channel:
/// worker-stamped metadata values travel `encode` → shard file →
/// `decode`, so quotes, separators, and control bytes in a value must
/// survive the canonical text framing.
#[test]
fn hostile_metadata_values_round_trip_through_event_log() {
    let mut log = p2auth_obs::EventLog::new(p2auth_obs::SessionSeeds::default());
    let hostile = "v=1 \"quoted\\\" \u{1}ctrl\ttab";
    log.meta_push("note", hostile.to_string());
    log.meta_push("empty", String::new());
    let encoded = log.encode();
    let back = p2auth_obs::EventLog::decode(&encoded).expect("decode");
    assert_eq!(back.meta_get("note"), Some(hostile));
    assert_eq!(back.meta_get("empty"), Some(""));
    assert_eq!(back.encode(), encoded, "canonical form must be stable");
    assert!(log.first_divergence(&back).is_none());
}
