//! Data-parallel primitives and the shared feature-matrix container.
//!
//! The P²Auth pipeline is embarrassingly parallel at several grains —
//! per-series MiniRocket transforms, per-key model training, per-attempt
//! evaluation — and this crate provides the one fan-out primitive they
//! all use: an order-preserving [`par_map`] over slices built on
//! [`std::thread::scope`], with a [`par_map_init`] variant that gives
//! every worker its own reusable scratch state.
//!
//! Design constraints:
//!
//! * **Zero external dependencies.** The build must work in hermetic /
//!   offline environments, so no rayon; scoped threads with static
//!   chunking cover the pipeline's uniform workloads just as well.
//! * **Determinism.** Results are returned in input order and every
//!   helper produces bit-identical output with the `parallel` feature on
//!   or off (workers only partition the input; they never reorder or
//!   re-associate floating-point reductions).
//! * **Opt-out.** Disabling the default `parallel` feature turns every
//!   helper into a plain serial loop for single-core / embedded targets.
//!
//! The crate also hosts [`FeatureMatrix`], the contiguous row-major
//! matrix handed from the rocket feature extractor to the ml classifier
//! fits, eliminating per-row `Vec` boxing on the hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod pool;

pub use matrix::FeatureMatrix;
pub use pool::{num_threads, par_map, par_map_indexed, par_map_init};
