//! Contiguous row-major feature matrix.

use std::fmt;

/// A dense, contiguous, row-major `f64` matrix.
///
/// This is the interchange type between the MiniRocket batch transform
/// (one feature row per input series) and the classifier fit paths: one
/// flat allocation instead of a `Vec<Vec<f64>>` of boxed rows, so batch
/// extraction can write rows in place and fits can stream cache-friendly
/// slices.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// Creates an empty matrix with `cols` columns and capacity for
    /// `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `cols == 0`.
    pub fn with_capacity(rows: usize, cols: usize) -> Self {
        assert!(cols > 0, "matrix must have at least one column");
        Self {
            rows: 0,
            cols,
            data: Vec::with_capacity(rows * cols),
        }
    }

    /// Builds a matrix from row vectors, validating that every row has
    /// exactly `cols` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cols == 0` or any row length differs from `cols`.
    pub fn from_rows(rows: Vec<Vec<f64>>, cols: usize) -> Self {
        let mut m = Self::with_capacity(rows.len(), cols);
        for r in &rows {
            m.push_row(r);
        }
        m
    }

    /// Wraps an existing flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `cols == 0` or `data.len()` is not a multiple of
    /// `cols`.
    pub fn from_flat(data: Vec<f64>, cols: usize) -> Self {
        assert!(cols > 0, "matrix must have at least one column");
        assert_eq!(
            data.len() % cols,
            0,
            "flat buffer length {} is not a multiple of {cols} columns",
            data.len()
        );
        Self {
            rows: data.len() / cols,
            cols,
            data,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != num_cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.cols,
            "row length {} != column count {}",
            row.len(),
            self.cols
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over row slices, in order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// The backing row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix into per-row vectors (compatibility helper
    /// for APIs still taking `Vec<Vec<f64>>`).
    pub fn into_rows(self) -> Vec<Vec<f64>> {
        self.data
            .chunks_exact(self.cols)
            .map(<[f64]>::to_vec)
            .collect()
    }
}

impl fmt::Display for FeatureMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FeatureMatrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = FeatureMatrix::from_rows(rows.clone(), 2);
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.rows().collect::<Vec<_>>().len(), 3);
        assert_eq!(m.into_rows(), rows);
    }

    #[test]
    fn from_flat_reshapes() {
        let m = FeatureMatrix::from_flat(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], 3);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn rejects_ragged_push() {
        let mut m = FeatureMatrix::with_capacity(1, 3);
        m.push_row(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_non_rectangular_flat() {
        FeatureMatrix::from_flat(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn empty_matrix_iterates_nothing() {
        let m = FeatureMatrix::with_capacity(0, 4);
        assert!(m.is_empty());
        assert_eq!(m.rows().count(), 0);
    }
}
