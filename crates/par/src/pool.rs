//! Order-preserving parallel maps on scoped OS threads.
//!
//! Work is partitioned into one contiguous chunk per worker, so each
//! output element is computed by exactly the same code as in a serial
//! loop and results are concatenated back in input order: output is
//! bit-identical with and without the `parallel` feature.

use std::num::NonZeroUsize;
use std::thread;

/// Number of workers a `par_*` call will use: the machine's available
/// parallelism with the `parallel` feature enabled, `1` otherwise.
pub fn num_threads() -> usize {
    if cfg!(feature = "parallel") {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        1
    }
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Falls back to a serial loop when the `parallel` feature is disabled,
/// the machine has a single core, or the input has fewer than two
/// elements.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_init(items, || (), |_, t| f(t))
}

/// Like [`par_map`], but each worker thread first builds private state
/// with `init` (e.g. a scratch buffer) that is reused across all items
/// of its chunk.
///
/// `f` must not let results depend on how items share state: the same
/// state value is reused within a chunk, and chunk boundaries move with
/// the core count.
///
/// # Panics
///
/// Propagates a panic from any invocation of `init` or `f`.
pub fn par_map_init<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = num_threads().min(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|t| f(&mut state, t)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let init = &init;
    let f = &f;
    let chunks: Vec<Vec<R>> = thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut state = init();
                    chunk.iter().map(|t| f(&mut state, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("p2auth-par worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for mut c in chunks {
        out.append(&mut c);
    }
    out
}

/// Maps `f` over the index range `0..n` in parallel, returning results
/// in index order.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let ys = par_map(&xs, |&x| x * 2);
        assert_eq!(ys, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn init_state_is_reused_within_a_chunk() {
        // The per-worker state is an accumulator; every output must see
        // state initialized by `init` (not garbage), and the map must
        // still preserve order.
        let xs: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let ys = par_map_init(
            &xs,
            || vec![0.0_f64; 4],
            |scratch, &x| {
                scratch[0] = x;
                scratch[0] * 3.0
            },
        );
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(*y, i as f64 * 3.0);
        }
    }

    #[test]
    fn indexed_matches_direct() {
        assert_eq!(par_map_indexed(5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn matches_serial_bitwise() {
        // Nontrivial float work: identical results regardless of
        // parallelism, because workers never re-associate reductions.
        let xs: Vec<f64> = (0..313).map(|i| (i as f64 * 0.37).sin()).collect();
        let work = |&x: &f64| {
            let mut acc = x;
            for k in 1..50 {
                acc = acc * 0.99 + (x / k as f64);
            }
            acc
        };
        let serial: Vec<f64> = xs.iter().map(work).collect();
        let parallel = par_map(&xs, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
