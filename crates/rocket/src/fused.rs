//! Fused transform-and-score: `w · φ(x) + b` without materializing φ.
//!
//! The P²Auth decision is a linear scorer over MiniRocket PPV features.
//! Because PPV pooling emits features in a fixed (dilation, kernel,
//! bias) order, the dot product can be folded directly into the kernel
//! sweep: as each convolution output is pooled, its PPV is multiplied
//! by the matching weight and accumulated — the 9996-feature vector is
//! never built. In f64 this is **bit-identical** to transform-then-dot,
//! because `p2auth_ml::linalg::dot` is a sequential multiply-accumulate
//! from 0.0 in exactly the same feature order, and the decision adds
//! the intercept last (see `DESIGN.md` §11 for the full argument; the
//! equivalence is pinned by tests here and in `p2auth-core`).
//!
//! [`FusedScorer`] owns a compacted copy of the transform's constant
//! tables (dilations, kernels, paddings, flattened channel subsets)
//! with per-feature `(bias, weight)` pairs interleaved for locality —
//! this is the per-profile "constant arena" unit that
//! `p2auth_core`'s profile arena holds once per enrolled model and
//! shares across sessions. [`FusedScorer::arena_bytes`] reports its
//! resident size for capacity planning.
//!
//! The opt-in `f32-lane` feature adds [`FusedScorerF32`], a
//! single-precision lane for throughput-bound fleets; it is *not*
//! bit-compatible with the f64 path and is differentially pinned
//! against the f64 oracle by `p2auth-verify`'s `f32_suite`.

use crate::kernels::NUM_KERNELS;
use crate::series::MultiSeries;
use crate::transform::{ppv, ConvScratch, MiniRocket};

/// A linear scorer folded into the MiniRocket kernel sweep.
///
/// Build one per enrolled model with [`FusedScorer::new`], then call
/// [`FusedScorer::score`] per keystroke segment. The scorer is
/// immutable and self-contained (it does not borrow the transform it
/// was built from), so it can be cached in a long-lived arena and
/// shared across authentication sessions.
#[derive(Debug, Clone)]
pub struct FusedScorer {
    input_length: usize,
    num_channels: usize,
    dilations: Vec<usize>,
    features_per_combo: usize,
    kernels: Vec<[usize; 3]>,
    paddings: Vec<bool>,
    /// Flattened channel subsets: combo `c` spans
    /// `subset_data[subset_bounds[c] as usize..subset_bounds[c + 1] as usize]`.
    subset_bounds: Vec<u32>,
    subset_data: Vec<usize>,
    /// Interleaved per-feature `(bias, weight)` pairs, in the exact
    /// feature order `transform_into` emits.
    bias_weight: Vec<(f64, f64)>,
    intercept: f64,
}

impl FusedScorer {
    /// Folds a linear model (`weights`, `intercept`) into the fitted
    /// transform's constant tables.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from
    /// [`MiniRocket::num_output_features`].
    #[must_use]
    pub fn new(rocket: &MiniRocket, weights: &[f64], intercept: f64) -> Self {
        assert_eq!(
            weights.len(),
            rocket.num_output_features(),
            "weight vector length must match the transform's feature count"
        );
        let num_combos = rocket.dilations.len() * NUM_KERNELS;
        let mut subset_bounds = Vec::with_capacity(num_combos + 1);
        let mut subset_data = Vec::with_capacity(rocket.channel_subsets.iter().map(Vec::len).sum());
        subset_bounds.push(0_u32);
        for subset in &rocket.channel_subsets {
            subset_data.extend_from_slice(subset);
            subset_bounds.push(u32::try_from(subset_data.len()).expect("subset table fits u32"));
        }
        let bias_weight = rocket
            .biases
            .iter()
            .zip(weights)
            .map(|(&b, &w)| (b, w))
            .collect();
        Self {
            input_length: rocket.input_length,
            num_channels: rocket.num_channels,
            dilations: rocket.dilations.clone(),
            features_per_combo: rocket.features_per_combo,
            kernels: rocket.kernels.clone(),
            paddings: rocket.paddings.clone(),
            subset_bounds,
            subset_data,
            bias_weight,
            intercept,
        }
    }

    /// Input length the underlying transform was fitted for.
    #[must_use]
    pub fn input_length(&self) -> usize {
        self.input_length
    }

    /// Channel count the underlying transform was fitted for.
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Number of (virtual) features the folded weight vector covers.
    #[must_use]
    pub fn num_features(&self) -> usize {
        self.bias_weight.len()
    }

    /// Resident heap + inline size of this scorer's constant tables in
    /// bytes. Used by the arena memory-budget accounting (DESIGN.md
    /// §11): the dominant term is the `(bias, weight)` table at 16
    /// bytes per feature.
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.dilations.capacity() * std::mem::size_of::<usize>()
            + self.kernels.capacity() * std::mem::size_of::<[usize; 3]>()
            + self.paddings.capacity()
            + self.subset_bounds.capacity() * std::mem::size_of::<u32>()
            + self.subset_data.capacity() * std::mem::size_of::<usize>()
            + self.bias_weight.capacity() * std::mem::size_of::<(f64, f64)>()
    }

    /// Scores one segment: sensor samples in, decision margin out, with
    /// no materialized feature vector. Bit-identical (f64) to
    /// `dot(weights, transform_one(series)) + intercept`.
    ///
    /// # Panics
    ///
    /// Panics if the series shape differs from the training data.
    #[must_use]
    pub fn score(&self, series: &MultiSeries, scratch: &mut ConvScratch) -> f64 {
        let _span = p2auth_obs::span!("rocket.fused");
        p2auth_obs::counter!("rocket.fused.scores").incr();
        assert_eq!(series.len(), self.input_length, "series length mismatch");
        assert_eq!(
            series.num_channels(),
            self.num_channels,
            "channel count mismatch"
        );
        let mut acc = 0.0_f64;
        let mut feat = 0;
        for (d_idx, &dilation) in self.dilations.iter().enumerate() {
            scratch.prepare_dilation(series, dilation);
            for (k_idx, kernel) in self.kernels.iter().enumerate() {
                let combo = d_idx * NUM_KERNELS + k_idx;
                let subset = &self.subset_data
                    [self.subset_bounds[combo] as usize..self.subset_bounds[combo + 1] as usize];
                let conv = scratch.convolve_prepared(subset, *kernel, self.paddings[combo]);
                // Same accumulation order as `dot`: products added
                // left-to-right from 0.0, intercept last.
                for &(bias, w) in &self.bias_weight[feat..feat + self.features_per_combo] {
                    acc += w * ppv(conv, bias);
                }
                feat += self.features_per_combo;
            }
        }
        acc + self.intercept
    }
}

/// Single-precision fused scoring lane (opt-in `f32-lane` feature).
///
/// The bandwidth-bound work — shifted taps, 9-tap sums, convolution
/// and PPV comparison — runs in `f32`, halving the hot working set.
/// The final weighted accumulation (840 scalar adds, a rounding error
/// off the hot loop) runs in `f64`: a single-precision accumulator
/// loses up to ~1e-3 of the score to cancellation when the positive
/// and negative weighted terms nearly balance, which is the common
/// case near the decision threshold. The result is *not*
/// bit-compatible with [`FusedScorer::score`]; `p2auth-verify`'s
/// differential suite pins it within `1e-4` relative of the f64
/// oracle. One caveat: when a convolution value ties a bias *exactly*
/// (which happens when scoring the training series themselves — biases
/// are training-conv quantiles), f32 rounding can flip the PPV
/// comparison and move the score by `|w|/out_len`; unseen inputs never
/// produce exact ties, so the auth path stays inside the contract.
#[cfg(feature = "f32-lane")]
pub mod f32_lane {
    use super::FusedScorer;
    use crate::kernels::{KERNEL_LENGTH, NUM_KERNELS};
    use crate::series::MultiSeries;

    /// `f32` twin of [`crate::ConvScratch`]: flat `[channel][tap][i]`
    /// shifted signals, per-channel 9-tap sums and a conv output
    /// buffer, all single-precision.
    #[derive(Debug)]
    pub struct ConvScratchF32 {
        len: usize,
        channels: usize,
        shifted: Vec<f32>,
        s9: Vec<f32>,
        out: Vec<f32>,
        prepared_dilation: Option<usize>,
    }

    impl ConvScratchF32 {
        /// Creates scratch pre-sized for series of length `len` (a
        /// hint — the scratch resizes itself like its f64 twin).
        #[must_use]
        pub fn new(len: usize) -> Self {
            Self {
                len,
                channels: 0,
                shifted: Vec::new(),
                s9: Vec::new(),
                out: vec![0.0; len],
                prepared_dilation: None,
            }
        }

        fn prepare_dilation(&mut self, series: &MultiSeries, dilation: usize) {
            let half = KERNEL_LENGTH / 2;
            let n = series.len();
            let nch = series.num_channels();
            if n != self.len || nch != self.channels {
                self.len = n;
                self.channels = nch;
                self.shifted.clear();
                self.shifted.resize(nch * KERNEL_LENGTH * n, 0.0);
                self.s9.clear();
                self.s9.resize(nch * n, 0.0);
                self.out.clear();
                self.out.resize(n, 0.0);
            }
            for ch in 0..nch {
                let x = series.channel(ch);
                let ch_base = ch * KERNEL_LENGTH * n;
                for j in 0..KERNEL_LENGTH {
                    let tap = &mut self.shifted[ch_base + j * n..ch_base + (j + 1) * n];
                    if j >= half {
                        let off = (j - half) * dilation;
                        if off >= n {
                            tap.fill(0.0);
                        } else {
                            for (t, &v) in tap[..n - off].iter_mut().zip(&x[off..]) {
                                *t = v as f32;
                            }
                            tap[n - off..].fill(0.0);
                        }
                    } else {
                        let off = (half - j) * dilation;
                        if off >= n {
                            tap.fill(0.0);
                        } else {
                            for (t, &v) in tap[off..].iter_mut().zip(&x[..n - off]) {
                                *t = v as f32;
                            }
                            tap[..off].fill(0.0);
                        }
                    }
                }
                let s9 = &mut self.s9[ch * n..(ch + 1) * n];
                s9.fill(0.0);
                for j in 0..KERNEL_LENGTH {
                    let tap = &self.shifted[ch_base + j * n..ch_base + (j + 1) * n];
                    for (a, &b) in s9.iter_mut().zip(tap) {
                        *a += b;
                    }
                }
            }
            self.prepared_dilation = Some(dilation);
        }

        fn convolve_prepared(
            &mut self,
            subset: &[usize],
            kernel: [usize; 3],
            padding: bool,
        ) -> &[f32] {
            let dilation = self.prepared_dilation.expect("prepare_dilation not called");
            let n = self.len;
            self.out.fill(0.0);
            let out = &mut self.out;
            for &ch in subset {
                let ch_base = ch * KERNEL_LENGTH * n;
                let t0 = &self.shifted[ch_base + kernel[0] * n..ch_base + kernel[0] * n + n];
                let t1 = &self.shifted[ch_base + kernel[1] * n..ch_base + kernel[1] * n + n];
                let t2 = &self.shifted[ch_base + kernel[2] * n..ch_base + kernel[2] * n + n];
                let s9 = &self.s9[ch * n..ch * n + n];
                for ((o, ((&a, &b), &c)), &s) in
                    out.iter_mut().zip(t0.iter().zip(t1).zip(t2)).zip(s9)
                {
                    *o += 3.0 * (a + b + c) - s;
                }
            }
            if padding {
                &self.out
            } else {
                let margin = (KERNEL_LENGTH / 2) * dilation;
                let end = n.saturating_sub(margin);
                if margin >= end {
                    // Degenerate valid padding falls back to the full
                    // padded output, mirroring the f64 scratch.
                    &self.out
                } else {
                    &self.out[margin..end]
                }
            }
        }
    }

    fn ppv_f32(conv: &[f32], bias: f32) -> f32 {
        if conv.is_empty() {
            return 0.0;
        }
        let count: usize = conv.iter().map(|&v| usize::from(v > bias)).sum();
        count as f32 / conv.len() as f32
    }

    /// `f32` twin of [`FusedScorer`], built from one by casting its
    /// tables down. Roughly halves the arena footprint per model.
    #[derive(Debug, Clone)]
    pub struct FusedScorerF32 {
        input_length: usize,
        num_channels: usize,
        dilations: Vec<usize>,
        features_per_combo: usize,
        kernels: Vec<[usize; 3]>,
        paddings: Vec<bool>,
        subset_bounds: Vec<u32>,
        subset_data: Vec<usize>,
        bias_weight: Vec<(f32, f32)>,
        intercept: f32,
    }

    impl FusedScorerF32 {
        /// Casts an f64 scorer's tables to single precision.
        #[must_use]
        pub fn from_f64(scorer: &FusedScorer) -> Self {
            Self {
                input_length: scorer.input_length,
                num_channels: scorer.num_channels,
                dilations: scorer.dilations.clone(),
                features_per_combo: scorer.features_per_combo,
                kernels: scorer.kernels.clone(),
                paddings: scorer.paddings.clone(),
                subset_bounds: scorer.subset_bounds.clone(),
                subset_data: scorer.subset_data.clone(),
                bias_weight: scorer
                    .bias_weight
                    .iter()
                    .map(|&(b, w)| (b as f32, w as f32))
                    .collect(),
                intercept: scorer.intercept as f32,
            }
        }

        /// Single-precision fused score. See the module docs for the
        /// accuracy contract.
        ///
        /// # Panics
        ///
        /// Panics if the series shape differs from the training data.
        #[must_use]
        pub fn score(&self, series: &MultiSeries, scratch: &mut ConvScratchF32) -> f32 {
            assert_eq!(series.len(), self.input_length, "series length mismatch");
            assert_eq!(
                series.num_channels(),
                self.num_channels,
                "channel count mismatch"
            );
            // f64 accumulator: see the module docs — f32 accumulation
            // cancels catastrophically near the decision threshold.
            let mut acc = 0.0_f64;
            let mut feat = 0;
            for (d_idx, &dilation) in self.dilations.iter().enumerate() {
                scratch.prepare_dilation(series, dilation);
                for (k_idx, kernel) in self.kernels.iter().enumerate() {
                    let combo = d_idx * NUM_KERNELS + k_idx;
                    let subset = &self.subset_data[self.subset_bounds[combo] as usize
                        ..self.subset_bounds[combo + 1] as usize];
                    let conv = scratch.convolve_prepared(subset, *kernel, self.paddings[combo]);
                    for &(bias, w) in &self.bias_weight[feat..feat + self.features_per_combo] {
                        acc += f64::from(w) * f64::from(ppv_f32(conv, bias));
                    }
                    feat += self.features_per_combo;
                }
            }
            (acc + f64::from(self.intercept)) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::MiniRocketConfig;

    fn sine_series(n: usize, freq: f64, channels: usize) -> MultiSeries {
        let data: Vec<Vec<f64>> = (0..channels)
            .map(|c| {
                (0..n)
                    .map(|i| ((i as f64 + c as f64 * 3.0) * freq).sin())
                    .collect()
            })
            .collect();
        MultiSeries::new(data).unwrap()
    }

    /// Same expression as `p2auth_ml::linalg::dot` (sequential
    /// multiply-accumulate from 0.0) — the fused path must match this
    /// composition bit-for-bit.
    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn pseudo_weights(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic, sign-varying weights without an RNG dependency.
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(seed);
                (h % 2000) as f64 / 1000.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn fused_score_bit_identical_to_transform_then_dot() {
        for (len, channels, seed) in [(90, 2, 7_u64), (64, 1, 42), (128, 4, 0xbeef)] {
            let train: Vec<MultiSeries> = (0..4)
                .map(|i| sine_series(len, 0.2 + 0.17 * i as f64, channels))
                .collect();
            let cfg = MiniRocketConfig {
                seed,
                ..Default::default()
            };
            let rocket = MiniRocket::fit(&cfg, &train).unwrap();
            let weights = pseudo_weights(rocket.num_output_features(), seed);
            let intercept = 0.137 * seed as f64;
            let scorer = FusedScorer::new(&rocket, &weights, intercept);
            let mut scratch = ConvScratch::new(len);
            for probe in &train {
                let features = rocket.transform_one(probe);
                let expect = dot(&weights, &features) + intercept;
                let got = scorer.score(probe, &mut scratch);
                assert_eq!(
                    got.to_bits(),
                    expect.to_bits(),
                    "len={len} ch={channels} seed={seed}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn zero_weights_score_intercept() {
        let train = vec![sine_series(64, 0.3, 2), sine_series(64, 0.8, 2)];
        let rocket = MiniRocket::fit(&MiniRocketConfig::default(), &train).unwrap();
        let weights = vec![0.0; rocket.num_output_features()];
        let scorer = FusedScorer::new(&rocket, &weights, -1.25);
        let mut scratch = ConvScratch::new(64);
        assert_eq!(scorer.score(&train[0], &mut scratch), -1.25);
    }

    #[test]
    fn arena_bytes_dominated_by_bias_weight_table() {
        let train = vec![sine_series(90, 0.3, 2), sine_series(90, 0.8, 2)];
        let rocket = MiniRocket::fit(&MiniRocketConfig::default(), &train).unwrap();
        let weights = pseudo_weights(rocket.num_output_features(), 3);
        let scorer = FusedScorer::new(&rocket, &weights, 0.0);
        let bytes = scorer.arena_bytes();
        let bias_weight_bytes = scorer.num_features() * 16;
        assert!(bytes >= bias_weight_bytes);
        // The constant tables beyond (bias, weight) are small: combo
        // tables scale with 840 combos, not 9996 features.
        assert!(
            bytes < 4 * bias_weight_bytes,
            "arena unexpectedly large: {bytes} vs table {bias_weight_bytes}"
        );
    }

    #[test]
    #[should_panic(expected = "weight vector length")]
    fn mismatched_weight_length_panics() {
        let train = vec![sine_series(64, 0.3, 1)];
        let rocket = MiniRocket::fit(&MiniRocketConfig::default(), &train).unwrap();
        let _ = FusedScorer::new(&rocket, &[1.0, 2.0], 0.0);
    }

    #[cfg(feature = "f32-lane")]
    #[test]
    fn f32_lane_tracks_f64_oracle() {
        use super::f32_lane::{ConvScratchF32, FusedScorerF32};
        let train: Vec<MultiSeries> = (0..4)
            .map(|i| sine_series(90, 0.2 + 0.17 * i as f64, 2))
            .collect();
        let rocket = MiniRocket::fit(&MiniRocketConfig::default(), &train).unwrap();
        let weights = pseudo_weights(rocket.num_output_features(), 11);
        let scorer = FusedScorer::new(&rocket, &weights, 0.4);
        let scorer32 = FusedScorerF32::from_f64(&scorer);
        let mut scratch = ConvScratch::new(90);
        let mut scratch32 = ConvScratchF32::new(90);

        // Fresh probes: no conv value ties a bias exactly, so the only
        // error source is f32 rounding of the convolution — well
        // inside the 1e-4 contract.
        for i in 0..4 {
            let probe = sine_series(90, 0.11 + 0.23 * i as f64, 2);
            let f64_score = scorer.score(&probe, &mut scratch);
            let f32_score = f64::from(scorer32.score(&probe, &mut scratch32));
            let rel = (f32_score - f64_score).abs() / f64_score.abs().max(1.0);
            assert!(
                rel <= 1e-4,
                "f32 lane diverged on fresh probe: {f32_score} vs {f64_score} (rel {rel})"
            );
        }

        // Training probes are the adversarial case: biases are
        // quantiles of the training convolutions, so `conv == bias`
        // ties are exact in f64 and f32 rounding can flip the PPV
        // comparison. Each flip moves the score by |w|/out_len, so the
        // bound here is the count-flip granularity, not rounding.
        for probe in &train {
            let f64_score = scorer.score(probe, &mut scratch);
            let f32_score = f64::from(scorer32.score(probe, &mut scratch32));
            let rel = (f32_score - f64_score).abs() / f64_score.abs().max(1.0);
            assert!(
                rel <= 1e-2,
                "f32 lane diverged on training probe: {f32_score} vs {f64_score} (rel {rel})"
            );
        }
    }
}
