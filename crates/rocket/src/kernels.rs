//! The fixed MiniRocket kernel set.
//!
//! Each kernel has length 9 and weights drawn from two values: −1
//! ("low") and 2 ("high"), with exactly three high taps. There are
//! `C(9,3) = 84` such kernels and MiniRocket uses all of them.

/// Kernel length (fixed at 9 in MiniRocket).
pub const KERNEL_LENGTH: usize = 9;

/// Number of kernels (`C(9,3)` = 84).
pub const NUM_KERNELS: usize = 84;

/// Weight of the six "background" taps.
pub const WEIGHT_LOW: f64 = -1.0;

/// Weight of the three selected taps.
pub const WEIGHT_HIGH: f64 = 2.0;

/// Returns the 84 index triples `(i, j, k)` with `i < j < k < 9` that
/// receive the high weight, in lexicographic order.
///
/// The ordering is deterministic so a fitted transform is reproducible.
pub fn kernel_indices() -> Vec<[usize; 3]> {
    let mut out = Vec::with_capacity(NUM_KERNELS);
    for i in 0..KERNEL_LENGTH {
        for j in i + 1..KERNEL_LENGTH {
            for k in j + 1..KERNEL_LENGTH {
                out.push([i, j, k]);
            }
        }
    }
    debug_assert_eq!(out.len(), NUM_KERNELS);
    out
}

/// Materializes the full weight vector of kernel `triple`.
///
/// Mostly useful for tests and documentation; the transform itself uses
/// the `-S9 + 3*S3` decomposition instead of explicit weights.
pub fn kernel_weights(triple: [usize; 3]) -> [f64; KERNEL_LENGTH] {
    let mut w = [WEIGHT_LOW; KERNEL_LENGTH];
    for idx in triple {
        w[idx] = WEIGHT_HIGH;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_84_kernels() {
        assert_eq!(kernel_indices().len(), 84);
    }

    #[test]
    fn triples_sorted_and_unique() {
        let ks = kernel_indices();
        for t in &ks {
            assert!(t[0] < t[1] && t[1] < t[2] && t[2] < KERNEL_LENGTH);
        }
        let mut sorted = ks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ks.len());
        assert_eq!(sorted, ks, "lexicographic order expected");
    }

    #[test]
    fn weights_sum_to_zero() {
        // 6 * (−1) + 3 * 2 = 0: every MiniRocket kernel has zero sum, so
        // the transform is invariant to constant offsets.
        for t in kernel_indices() {
            let s: f64 = kernel_weights(t).iter().sum();
            assert_eq!(s, 0.0);
        }
    }
}
