//! MiniRocket time-series feature transform.
//!
//! P²Auth extracts features from keystroke-induced PPG measurements with
//! MiniRocket (Dempster, Schmidt & Webb, KDD'21), chosen because it
//! "achieves high accuracy at very low computational cost" (paper
//! §IV-B 2.3). This crate is a from-scratch Rust implementation of the
//! transform as the paper uses it:
//!
//! * the fixed set of **84 kernels** of length 9 with weights restricted
//!   to two values (−1 and 2, three taps of weight 2: `C(9,3) = 84`),
//! * **exponential dilations** fitted to the input length (paper Eq. (5)),
//! * **bias quantiles** drawn from the convolution outputs of training
//!   examples,
//! * **PPV pooling** — the proportion of positive values (paper Eq. (6)),
//! * multivariate support via per-kernel channel subsets (the prototype
//!   has 2–6 PPG channels).
//!
//! The convolution engine runs on flat, reusable scratch buffers (see
//! [`ConvScratch`]) and the batch paths ([`MiniRocket::transform`],
//! bias sampling inside [`MiniRocket::fit`]) fan out across threads
//! under the default `parallel` feature; disable it
//! (`default-features = false`) for single-core or embedded targets.
//! Feature values are bit-identical either way.
//!
//! # Example
//!
//! ```
//! use p2auth_rocket::{MiniRocket, MiniRocketConfig, MultiSeries};
//!
//! // Two tiny single-channel training series.
//! let train = vec![
//!     MultiSeries::univariate((0..64).map(|i| (i as f64 * 0.3).sin()).collect()),
//!     MultiSeries::univariate((0..64).map(|i| (i as f64 * 0.7).cos()).collect()),
//! ];
//! let rocket = MiniRocket::fit(&MiniRocketConfig::default(), &train).unwrap();
//! let features = rocket.transform_one(&train[0]);
//! assert!(features.iter().all(|&f| (0.0..=1.0).contains(&f)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fused;
mod kernels;
mod series;
mod transform;

#[cfg(feature = "f32-lane")]
pub use fused::f32_lane::{ConvScratchF32, FusedScorerF32};
pub use fused::FusedScorer;
pub use kernels::{
    kernel_indices, kernel_weights, KERNEL_LENGTH, NUM_KERNELS, WEIGHT_HIGH, WEIGHT_LOW,
};
pub use p2auth_par::FeatureMatrix;
pub use series::{MultiSeries, ShapeError};
pub use transform::{ConvScratch, FitError, MiniRocket, MiniRocketConfig};
