//! Multichannel time-series container.

use std::fmt;

/// A multichannel time series: `channels × time`, all channels the same
/// length.
///
/// The P²Auth prototype records 2–6 PPG channels (red/IR on radial/ulnar
/// placements); [`MultiSeries`] enforces the equal-length invariant once
/// at construction so the transform can index freely.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSeries {
    channels: Vec<Vec<f64>>,
}

/// Error constructing a [`MultiSeries`] from ragged or empty data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    detail: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid multichannel series shape: {}", self.detail)
    }
}

impl std::error::Error for ShapeError {}

impl MultiSeries {
    /// Creates a multichannel series, validating that at least one
    /// channel exists and all channels have equal, non-zero length.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] for empty input, an empty channel, or
    /// ragged channel lengths.
    pub fn new(channels: Vec<Vec<f64>>) -> Result<Self, ShapeError> {
        if channels.is_empty() {
            return Err(ShapeError {
                detail: "no channels".into(),
            });
        }
        let len = channels[0].len();
        if len == 0 {
            return Err(ShapeError {
                detail: "zero-length channel".into(),
            });
        }
        for (i, c) in channels.iter().enumerate() {
            if c.len() != len {
                return Err(ShapeError {
                    detail: format!("channel {i} has length {} != {len}", c.len()),
                });
            }
        }
        Ok(Self { channels })
    }

    /// Creates a single-channel series.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn univariate(data: Vec<f64>) -> Self {
        Self::new(vec![data]).expect("univariate series must be non-empty")
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.channels[0].len()
    }

    /// Always false: the constructor rejects empty series.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_channels()`.
    pub fn channel(&self, idx: usize) -> &[f64] {
        &self.channels[idx]
    }

    /// All channels as a slice of vectors.
    pub fn channels(&self) -> &[Vec<f64>] {
        &self.channels
    }

    /// Consumes the series, returning the raw channel data.
    pub fn into_inner(self) -> Vec<Vec<f64>> {
        self.channels
    }

    /// Returns a copy restricted to the given channel indices (in order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `idxs` is empty.
    pub fn select_channels(&self, idxs: &[usize]) -> Self {
        assert!(!idxs.is_empty(), "must select at least one channel");
        Self {
            channels: idxs.iter().map(|&i| self.channels[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_ragged() {
        assert!(MultiSeries::new(vec![vec![1.0, 2.0], vec![1.0]]).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(MultiSeries::new(vec![]).is_err());
        assert!(MultiSeries::new(vec![vec![]]).is_err());
    }

    #[test]
    fn accessors() {
        let s = MultiSeries::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(s.num_channels(), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.channel(1), &[3.0, 4.0]);
        assert!(!s.is_empty());
    }

    #[test]
    fn select_subset() {
        let s = MultiSeries::new(vec![vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let sub = s.select_channels(&[2, 0]);
        assert_eq!(sub.channels(), &[vec![3.0], vec![1.0]]);
    }
}
