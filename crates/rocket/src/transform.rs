//! The MiniRocket fit/transform pipeline.

use crate::kernels::{kernel_indices, KERNEL_LENGTH, NUM_KERNELS};
use crate::series::MultiSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration for fitting a [`MiniRocket`] transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiniRocketConfig {
    /// Approximate total number of output features. The fitted transform
    /// rounds this to a multiple of the 84 kernels; see
    /// [`MiniRocket::num_output_features`] for the exact count.
    pub num_features: usize,
    /// Upper bound on the number of distinct dilations per kernel
    /// (32 in the reference implementation).
    pub max_dilations_per_kernel: usize,
    /// Seed for bias sampling and channel-subset selection; the same
    /// seed and training set always produce the same transform.
    pub seed: u64,
}

impl Default for MiniRocketConfig {
    fn default() -> Self {
        Self {
            num_features: 840,
            max_dilations_per_kernel: 32,
            seed: 0x9e37_79b9,
        }
    }
}

/// Error fitting a [`MiniRocket`] transform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Training series had differing lengths (MiniRocket requires equal
    /// lengths; P²Auth guarantees this via fixed segmentation windows).
    UnequalLengths {
        /// Length of the first series.
        expected: usize,
        /// Conflicting length found.
        found: usize,
    },
    /// Training series had differing channel counts.
    UnequalChannels {
        /// Channel count of the first series.
        expected: usize,
        /// Conflicting channel count found.
        found: usize,
    },
    /// The series are too short for the length-9 kernels.
    TooShort {
        /// Actual input length.
        len: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyTrainingSet => write!(f, "empty training set"),
            FitError::UnequalLengths { expected, found } => {
                write!(f, "training series lengths differ: {found} != {expected}")
            }
            FitError::UnequalChannels { expected, found } => {
                write!(f, "training channel counts differ: {found} != {expected}")
            }
            FitError::TooShort { len } => {
                write!(f, "series length {len} too short for length-9 kernels")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted MiniRocket transform.
///
/// Create with [`MiniRocket::fit`], then apply with
/// [`MiniRocket::transform`] or [`MiniRocket::transform_one`]. The
/// transform is fully deterministic given the config seed and training
/// data, and immutable once fitted. Implements Serde
/// `Serialize`/`Deserialize` so enrolled transforms can be persisted on
/// a device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MiniRocket {
    input_length: usize,
    num_channels: usize,
    dilations: Vec<usize>,
    features_per_combo: usize,
    /// Channel subset per (dilation, kernel) combo, row-major by dilation.
    channel_subsets: Vec<Vec<usize>>,
    /// Whether each (dilation, kernel) combo uses "same" (zero) padding.
    paddings: Vec<bool>,
    /// Biases per (dilation, kernel, feature), row-major.
    biases: Vec<f64>,
    kernels: Vec<[usize; 3]>,
}

impl MiniRocket {
    /// Fits the transform on a training set: chooses dilations from the
    /// input length, assigns channel subsets, and samples bias values
    /// from quantiles of training convolution outputs.
    ///
    /// # Errors
    ///
    /// Returns a [`FitError`] if the training set is empty, ragged in
    /// length or channel count, or shorter than 9 samples.
    pub fn fit(config: &MiniRocketConfig, train: &[MultiSeries]) -> Result<Self, FitError> {
        let first = train.first().ok_or(FitError::EmptyTrainingSet)?;
        let input_length = first.len();
        let num_channels = first.num_channels();
        for s in train {
            if s.len() != input_length {
                return Err(FitError::UnequalLengths {
                    expected: input_length,
                    found: s.len(),
                });
            }
            if s.num_channels() != num_channels {
                return Err(FitError::UnequalChannels {
                    expected: num_channels,
                    found: s.num_channels(),
                });
            }
        }
        if input_length < KERNEL_LENGTH {
            return Err(FitError::TooShort { len: input_length });
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let kernels = kernel_indices();

        // Dilations: exponentially spaced in [1, (L-1)/8].
        let max_dilation = ((input_length - 1) / (KERNEL_LENGTH - 1)).max(1);
        let features_per_kernel = (config.num_features / NUM_KERNELS).max(1);
        let num_dilations = config
            .max_dilations_per_kernel
            .min(features_per_kernel)
            .max(1);
        let features_per_combo = (features_per_kernel / num_dilations).max(1);
        let max_exp = (max_dilation as f64).log2();
        let dilations: Vec<usize> = (0..num_dilations)
            .map(|i| {
                let e = if num_dilations == 1 {
                    0.0
                } else {
                    max_exp * i as f64 / (num_dilations - 1) as f64
                };
                (2.0_f64.powf(e).floor() as usize).clamp(1, max_dilation)
            })
            .collect();

        // Channel subsets per combo: exponentially distributed sizes, as
        // in multivariate MiniRocket.
        let num_combos = dilations.len() * NUM_KERNELS;
        let mut channel_subsets = Vec::with_capacity(num_combos);
        for _ in 0..num_combos {
            channel_subsets.push(sample_channel_subset(&mut rng, num_channels));
        }

        // Alternating padding.
        let paddings: Vec<bool> = (0..num_combos).map(|c| c % 2 == 0).collect();

        // Biases: for each combo, convolve a randomly chosen training
        // example and take low-discrepancy quantiles of the output.
        let mut biases = Vec::with_capacity(num_combos * features_per_combo);
        let phi = 0.618_033_988_749_894_9_f64; // golden-ratio sequence
        let mut feature_counter = 0_u64;
        let mut scratch = ConvScratch::new(input_length);
        for (d_idx, &dilation) in dilations.iter().enumerate() {
            for (k_idx, kernel) in kernels.iter().enumerate() {
                let combo = d_idx * NUM_KERNELS + k_idx;
                let sample = &train[rng.gen_range(0..train.len())];
                let conv = scratch.convolve(
                    sample,
                    &channel_subsets[combo],
                    dilation,
                    *kernel,
                    paddings[combo],
                );
                let mut sorted = conv.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in convolution"));
                for _ in 0..features_per_combo {
                    feature_counter += 1;
                    let q = (feature_counter as f64 * phi).fract();
                    let pos = q * (sorted.len() - 1) as f64;
                    let i0 = pos.floor() as usize;
                    let frac = pos - i0 as f64;
                    let b = if i0 + 1 < sorted.len() {
                        sorted[i0] * (1.0 - frac) + sorted[i0 + 1] * frac
                    } else {
                        sorted[i0]
                    };
                    biases.push(b);
                }
            }
        }

        Ok(Self {
            input_length,
            num_channels,
            dilations,
            features_per_combo,
            channel_subsets,
            paddings,
            biases,
            kernels,
        })
    }

    /// Exact number of features produced per series.
    pub fn num_output_features(&self) -> usize {
        self.dilations.len() * NUM_KERNELS * self.features_per_combo
    }

    /// Input length this transform was fitted for.
    pub fn input_length(&self) -> usize {
        self.input_length
    }

    /// Channel count this transform was fitted for.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Transforms one series into its PPV feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the series length or channel count differs from the
    /// training data (P²Auth's segmentation guarantees fixed shapes).
    pub fn transform_one(&self, series: &MultiSeries) -> Vec<f64> {
        assert_eq!(series.len(), self.input_length, "series length mismatch");
        assert_eq!(
            series.num_channels(),
            self.num_channels,
            "channel count mismatch"
        );
        let mut out = Vec::with_capacity(self.num_output_features());
        let mut scratch = ConvScratch::new(self.input_length);
        for (d_idx, &dilation) in self.dilations.iter().enumerate() {
            scratch.prepare_dilation(series, dilation);
            for (k_idx, kernel) in self.kernels.iter().enumerate() {
                let combo = d_idx * NUM_KERNELS + k_idx;
                let conv = scratch.convolve_prepared(
                    &self.channel_subsets[combo],
                    *kernel,
                    self.paddings[combo],
                );
                let base = combo * self.features_per_combo;
                for f in 0..self.features_per_combo {
                    let bias = self.biases[base + f];
                    out.push(ppv(conv, bias));
                }
            }
        }
        out
    }

    /// Transforms a batch of series; one feature row per input.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MiniRocket::transform_one`].
    pub fn transform(&self, series: &[MultiSeries]) -> Vec<Vec<f64>> {
        series.iter().map(|s| self.transform_one(s)).collect()
    }
}

/// Proportion of values strictly greater than `bias` (paper Eq. (6),
/// written there with the sign function over `X * W_d − b`).
fn ppv(conv: &[f64], bias: f64) -> f64 {
    if conv.is_empty() {
        return 0.0;
    }
    conv.iter().filter(|&&v| v > bias).count() as f64 / conv.len() as f64
}

/// Samples a channel subset with exponentially distributed size, per the
/// multivariate MiniRocket scheme.
fn sample_channel_subset(rng: &mut StdRng, num_channels: usize) -> Vec<usize> {
    if num_channels == 1 {
        return vec![0];
    }
    let max_exp = (num_channels as f64).log2();
    let size = 2.0_f64.powf(rng.gen_range(0.0..=max_exp)).floor() as usize;
    let size = size.clamp(1, num_channels);
    // Partial Fisher-Yates for a random subset.
    let mut idxs: Vec<usize> = (0..num_channels).collect();
    for i in 0..size {
        let j = rng.gen_range(i..num_channels);
        idxs.swap(i, j);
    }
    idxs.truncate(size);
    idxs.sort_unstable();
    idxs
}

/// Scratch buffers for dilated convolution.
///
/// For a dilation `d`, the convolution of a zero-sum MiniRocket kernel
/// decomposes as `C[i] = 3·S3[i] − S9[i]` where `S9` sums all nine
/// dilated taps and `S3` sums the three high-weight taps. `S9` and the
/// per-channel shifted views are shared across the 84 kernels of each
/// dilation, which is what makes MiniRocket fast.
struct ConvScratch {
    len: usize,
    /// Per-channel, per-tap shifted signals: `shifted[ch][tap][i]`.
    shifted: Vec<Vec<Vec<f64>>>,
    /// Per-channel full 9-tap sums.
    s9: Vec<Vec<f64>>,
    out: Vec<f64>,
    prepared_dilation: Option<usize>,
}

impl ConvScratch {
    fn new(len: usize) -> Self {
        Self {
            len,
            shifted: Vec::new(),
            s9: Vec::new(),
            out: vec![0.0; len],
            prepared_dilation: None,
        }
    }

    /// Precomputes shifted views and 9-tap sums for every channel at one
    /// dilation.
    fn prepare_dilation(&mut self, series: &MultiSeries, dilation: usize) {
        let half = (KERNEL_LENGTH / 2) as i64;
        let n = self.len as i64;
        self.shifted.clear();
        self.s9.clear();
        for ch in 0..series.num_channels() {
            let x = series.channel(ch);
            let mut taps = Vec::with_capacity(KERNEL_LENGTH);
            for j in 0..KERNEL_LENGTH as i64 {
                let off = (j - half) * dilation as i64;
                let mut v = vec![0.0_f64; self.len];
                for (i, slot) in v.iter_mut().enumerate() {
                    let idx = i as i64 + off;
                    if idx >= 0 && idx < n {
                        *slot = x[idx as usize];
                    }
                }
                taps.push(v);
            }
            let mut s9 = vec![0.0_f64; self.len];
            for t in &taps {
                for (a, b) in s9.iter_mut().zip(t) {
                    *a += b;
                }
            }
            self.shifted.push(taps);
            self.s9.push(s9);
        }
        self.prepared_dilation = Some(dilation);
    }

    /// Convolution for one kernel over a channel subset, using buffers
    /// prepared by [`ConvScratch::prepare_dilation`]. Returns the output
    /// restricted to the valid region when `padding` is false.
    fn convolve_prepared(&mut self, subset: &[usize], kernel: [usize; 3], padding: bool) -> &[f64] {
        let dilation = self.prepared_dilation.expect("prepare_dilation not called");
        for v in self.out.iter_mut() {
            *v = 0.0;
        }
        for &ch in subset {
            let s9 = &self.s9[ch];
            let t0 = &self.shifted[ch][kernel[0]];
            let t1 = &self.shifted[ch][kernel[1]];
            let t2 = &self.shifted[ch][kernel[2]];
            for i in 0..self.len {
                self.out[i] += 3.0 * (t0[i] + t1[i] + t2[i]) - s9[i];
            }
        }
        if padding {
            &self.out
        } else {
            let margin = (KERNEL_LENGTH / 2) * dilation;
            let end = self.len.saturating_sub(margin);
            if margin >= end {
                // Degenerate: fall back to the padded output.
                &self.out
            } else {
                &self.out[margin..end]
            }
        }
    }

    /// One-shot convolution (prepare + convolve); used during fitting
    /// where each combo touches a different random sample.
    fn convolve(
        &mut self,
        series: &MultiSeries,
        subset: &[usize],
        dilation: usize,
        kernel: [usize; 3],
        padding: bool,
    ) -> &[f64] {
        self.prepare_dilation(series, dilation);
        self.convolve_prepared(subset, kernel, padding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::kernel_weights;

    fn sine_series(n: usize, freq: f64, channels: usize) -> MultiSeries {
        let data: Vec<Vec<f64>> = (0..channels)
            .map(|c| {
                (0..n)
                    .map(|i| ((i as f64 + c as f64 * 3.0) * freq).sin())
                    .collect()
            })
            .collect();
        MultiSeries::new(data).unwrap()
    }

    fn default_fit(train: &[MultiSeries]) -> MiniRocket {
        MiniRocket::fit(&MiniRocketConfig::default(), train).unwrap()
    }

    #[test]
    fn feature_count_matches() {
        let train = vec![sine_series(128, 0.2, 2), sine_series(128, 0.5, 2)];
        let r = default_fit(&train);
        let f = r.transform_one(&train[0]);
        assert_eq!(f.len(), r.num_output_features());
        assert!(f.len() >= NUM_KERNELS, "at least one feature per kernel");
    }

    #[test]
    fn features_are_ppv_in_unit_interval() {
        let train = vec![sine_series(100, 0.3, 3), sine_series(100, 0.8, 3)];
        let r = default_fit(&train);
        for s in &train {
            for v in r.transform_one(s) {
                assert!((0.0..=1.0).contains(&v), "ppv {v} out of range");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let train = vec![sine_series(96, 0.4, 2), sine_series(96, 0.9, 2)];
        let cfg = MiniRocketConfig {
            seed: 42,
            ..Default::default()
        };
        let r1 = MiniRocket::fit(&cfg, &train).unwrap();
        let r2 = MiniRocket::fit(&cfg, &train).unwrap();
        assert_eq!(r1.transform_one(&train[0]), r2.transform_one(&train[0]));
    }

    #[test]
    fn different_seeds_differ() {
        let train = vec![sine_series(96, 0.4, 2), sine_series(96, 0.9, 2)];
        let r1 = MiniRocket::fit(
            &MiniRocketConfig {
                seed: 1,
                ..Default::default()
            },
            &train,
        )
        .unwrap();
        let r2 = MiniRocket::fit(
            &MiniRocketConfig {
                seed: 2,
                ..Default::default()
            },
            &train,
        )
        .unwrap();
        assert_ne!(r1.transform_one(&train[0]), r2.transform_one(&train[0]));
    }

    #[test]
    fn offset_invariance() {
        // Zero-sum kernels make the convolution invariant to adding a
        // constant; with "same" padding edge effects change conv values
        // near the boundary, so compare with a generous tolerance on the
        // feature vector instead of exact equality.
        let base: Vec<f64> = (0..200).map(|i| (i as f64 * 0.25).sin()).collect();
        let shifted: Vec<f64> = base.iter().map(|v| v + 100.0).collect();
        let train = vec![MultiSeries::univariate(base.clone())];
        let r = default_fit(&train);
        let f1 = r.transform_one(&MultiSeries::univariate(base));
        let f2 = r.transform_one(&MultiSeries::univariate(shifted));
        let mean_diff: f64 =
            f1.iter().zip(&f2).map(|(a, b)| (a - b).abs()).sum::<f64>() / f1.len() as f64;
        assert!(mean_diff < 0.1, "mean ppv diff {mean_diff}");
    }

    #[test]
    fn separates_distinct_signals() {
        // Feature vectors of very different signals should differ more
        // than feature vectors of noisy copies of the same signal.
        let a = sine_series(128, 0.2, 1);
        let b = sine_series(128, 1.1, 1);
        let a_noisy = MultiSeries::univariate(
            a.channel(0)
                .iter()
                .enumerate()
                .map(|(i, v)| v + 0.01 * ((i * 7) % 3) as f64)
                .collect(),
        );
        let r = default_fit(&[a.clone(), b.clone()]);
        let fa = r.transform_one(&a);
        let fb = r.transform_one(&b);
        let fan = r.transform_one(&a_noisy);
        let dist = |x: &[f64], y: &[f64]| -> f64 {
            x.iter()
                .zip(y)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(&fa, &fb) > 3.0 * dist(&fa, &fan));
    }

    #[test]
    fn errors_on_bad_training_sets() {
        assert!(matches!(
            MiniRocket::fit(&MiniRocketConfig::default(), &[]),
            Err(FitError::EmptyTrainingSet)
        ));
        let a = sine_series(64, 0.3, 1);
        let b = sine_series(65, 0.3, 1);
        assert!(matches!(
            MiniRocket::fit(&MiniRocketConfig::default(), &[a.clone(), b]),
            Err(FitError::UnequalLengths { .. })
        ));
        let c = sine_series(64, 0.3, 2);
        assert!(matches!(
            MiniRocket::fit(&MiniRocketConfig::default(), &[a, c]),
            Err(FitError::UnequalChannels { .. })
        ));
        let tiny = MultiSeries::univariate(vec![1.0; 5]);
        assert!(matches!(
            MiniRocket::fit(&MiniRocketConfig::default(), &[tiny]),
            Err(FitError::TooShort { .. })
        ));
    }

    #[test]
    fn decomposition_matches_direct_convolution() {
        // Verify C = 3*S3 - S9 equals the explicit weighted convolution
        // for a handful of kernels at dilation 1 with same padding.
        let x: Vec<f64> = (0..40).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
        let series = MultiSeries::univariate(x.clone());
        let mut scratch = ConvScratch::new(x.len());
        scratch.prepare_dilation(&series, 1);
        for kernel in kernel_indices().into_iter().step_by(17) {
            let got = scratch.convolve_prepared(&[0], kernel, true).to_vec();
            let w = kernel_weights(kernel);
            let n = x.len() as i64;
            for (i, &g) in got.iter().enumerate() {
                let mut expect = 0.0;
                for (j, &wj) in w.iter().enumerate() {
                    let idx = i as i64 + j as i64 - 4;
                    if idx >= 0 && idx < n {
                        expect += wj * x[idx as usize];
                    }
                }
                assert!(
                    (g - expect).abs() < 1e-9,
                    "kernel {kernel:?} at {i}: {g} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn valid_padding_region_shorter() {
        let x = sine_series(64, 0.3, 1);
        let mut scratch = ConvScratch::new(64);
        scratch.prepare_dilation(&x, 4);
        let padded_len = scratch.convolve_prepared(&[0], [0, 4, 8], true).len();
        let valid_len = scratch.convolve_prepared(&[0], [0, 4, 8], false).len();
        assert_eq!(padded_len, 64);
        assert_eq!(valid_len, 64 - 2 * 16);
    }

    #[test]
    fn channel_subsets_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for c in 1..=8 {
            for _ in 0..50 {
                let s = sample_channel_subset(&mut rng, c);
                assert!(!s.is_empty() && s.len() <= c);
                assert!(s.iter().all(|&i| i < c));
                let mut d = s.clone();
                d.dedup();
                assert_eq!(d.len(), s.len(), "duplicate channels");
            }
        }
    }
}
