//! The MiniRocket fit/transform pipeline.
//!
//! # Performance notes
//!
//! This module is the hot path of every P²Auth operation, and its inner
//! loops are built around three ideas:
//!
//! * **Flat, reusable scratch** — [`ConvScratch`] holds one contiguous
//!   `[channel][tap][i]` buffer of dilated-shifted signals plus the
//!   per-channel 9-tap sums, allocated once and reused across dilations,
//!   kernels and (in batch paths) series.
//! * **Fused `3·S3 − S9` kernel** — every MiniRocket kernel decomposes
//!   into the shared 9-tap sum and three high-weight taps; the inner
//!   loop walks equal-length slices with iterator zips so the compiler
//!   can elide bounds checks and vectorize.
//! * **Grouped bias sampling** — during [`MiniRocket::fit`], combos are
//!   grouped by `(dilation, training sample)` so the shifted buffers are
//!   prepared once per group instead of once per combo (84× less
//!   preparation per dilation in the common case), while drawing random
//!   numbers in exactly the original order so fitted transforms stay
//!   bit-identical.
//!
//! Batch entry points fan out across threads via `p2auth-par` when the
//! default `parallel` feature is enabled; outputs are bit-identical to
//! the serial path because each series is processed independently by
//! the same code.

use crate::kernels::{kernel_indices, KERNEL_LENGTH, NUM_KERNELS};
use crate::series::MultiSeries;
use p2auth_par::{num_threads, par_map_init, FeatureMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::collections::BTreeMap;
use std::fmt;

/// Configuration for fitting a [`MiniRocket`] transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiniRocketConfig {
    /// Approximate total number of output features. The fitted transform
    /// rounds this to a multiple of the 84 kernels; see
    /// [`MiniRocket::num_output_features`] for the exact count.
    pub num_features: usize,
    /// Upper bound on the number of distinct dilations per kernel
    /// (32 in the reference implementation).
    pub max_dilations_per_kernel: usize,
    /// Seed for bias sampling and channel-subset selection; the same
    /// seed and training set always produce the same transform.
    pub seed: u64,
}

impl Default for MiniRocketConfig {
    fn default() -> Self {
        Self {
            num_features: 840,
            max_dilations_per_kernel: 32,
            seed: 0x9e37_79b9,
        }
    }
}

/// Error fitting a [`MiniRocket`] transform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Training series had differing lengths (MiniRocket requires equal
    /// lengths; P²Auth guarantees this via fixed segmentation windows).
    UnequalLengths {
        /// Length of the first series.
        expected: usize,
        /// Conflicting length found.
        found: usize,
    },
    /// Training series had differing channel counts.
    UnequalChannels {
        /// Channel count of the first series.
        expected: usize,
        /// Conflicting channel count found.
        found: usize,
    },
    /// The series are too short for the length-9 kernels.
    TooShort {
        /// Actual input length.
        len: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyTrainingSet => write!(f, "empty training set"),
            FitError::UnequalLengths { expected, found } => {
                write!(f, "training series lengths differ: {found} != {expected}")
            }
            FitError::UnequalChannels { expected, found } => {
                write!(f, "training channel counts differ: {found} != {expected}")
            }
            FitError::TooShort { len } => {
                write!(f, "series length {len} too short for length-9 kernels")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted MiniRocket transform.
///
/// Create with [`MiniRocket::fit`], then apply with
/// [`MiniRocket::transform`] or [`MiniRocket::transform_one`]. The
/// transform is fully deterministic given the config seed and training
/// data, and immutable once fitted. Implements Serde
/// `Serialize`/`Deserialize` so enrolled transforms can be persisted on
/// a device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MiniRocket {
    pub(crate) input_length: usize,
    pub(crate) num_channels: usize,
    pub(crate) dilations: Vec<usize>,
    pub(crate) features_per_combo: usize,
    /// Channel subset per (dilation, kernel) combo, row-major by dilation.
    pub(crate) channel_subsets: Vec<Vec<usize>>,
    /// Whether each (dilation, kernel) combo uses "same" (zero) padding.
    pub(crate) paddings: Vec<bool>,
    /// Biases per (dilation, kernel, feature), row-major.
    pub(crate) biases: Vec<f64>,
    pub(crate) kernels: Vec<[usize; 3]>,
}

impl MiniRocket {
    /// Fits the transform on a training set: chooses dilations from the
    /// input length, assigns channel subsets, and samples bias values
    /// from quantiles of training convolution outputs.
    ///
    /// The training set may be owned series (`&[MultiSeries]`) or
    /// borrowed ones (`&[&MultiSeries]`); callers holding slices of
    /// series need not clone them into a fresh `Vec`.
    ///
    /// Bias sampling prepares each `(dilation, training sample)` group
    /// once and fans groups out across threads; random draws happen
    /// up front in the original per-combo order, so the fitted transform
    /// is bit-identical to a fully serial, ungrouped fit.
    ///
    /// # Errors
    ///
    /// Returns a [`FitError`] if the training set is empty, ragged in
    /// length or channel count, or shorter than 9 samples.
    pub fn fit<S>(config: &MiniRocketConfig, train: &[S]) -> Result<Self, FitError>
    where
        S: Borrow<MultiSeries> + Sync,
    {
        let _span = p2auth_obs::span!("rocket.fit");
        let first = train.first().ok_or(FitError::EmptyTrainingSet)?.borrow();
        let input_length = first.len();
        let num_channels = first.num_channels();
        for s in train {
            let s = s.borrow();
            if s.len() != input_length {
                return Err(FitError::UnequalLengths {
                    expected: input_length,
                    found: s.len(),
                });
            }
            if s.num_channels() != num_channels {
                return Err(FitError::UnequalChannels {
                    expected: num_channels,
                    found: s.num_channels(),
                });
            }
        }
        if input_length < KERNEL_LENGTH {
            return Err(FitError::TooShort { len: input_length });
        }
        p2auth_obs::event!(
            "rocket.fit",
            "training_set",
            series = train.len(),
            input_length = input_length,
            channels = num_channels,
        );

        let mut rng = StdRng::seed_from_u64(config.seed);
        let kernels = kernel_indices();

        // Dilations: exponentially spaced in [1, (L-1)/8].
        let max_dilation = ((input_length - 1) / (KERNEL_LENGTH - 1)).max(1);
        let features_per_kernel = (config.num_features / NUM_KERNELS).max(1);
        let num_dilations = config
            .max_dilations_per_kernel
            .min(features_per_kernel)
            .max(1);
        let features_per_combo = (features_per_kernel / num_dilations).max(1);
        let max_exp = (max_dilation as f64).log2();
        let dilations: Vec<usize> = (0..num_dilations)
            .map(|i| {
                let e = if num_dilations == 1 {
                    0.0
                } else {
                    max_exp * i as f64 / (num_dilations - 1) as f64
                };
                (2.0_f64.powf(e).floor() as usize).clamp(1, max_dilation)
            })
            .collect();

        // Channel subsets per combo: exponentially distributed sizes, as
        // in multivariate MiniRocket.
        let num_combos = dilations.len() * NUM_KERNELS;
        let mut channel_subsets = Vec::with_capacity(num_combos);
        for _ in 0..num_combos {
            channel_subsets.push(sample_channel_subset(&mut rng, num_channels));
        }

        // Alternating padding.
        let paddings: Vec<bool> = (0..num_combos).map(|c| c % 2 == 0).collect();

        // Training-sample draws, in combo order: the draw order (and
        // therefore the fitted transform) must match the historical
        // one-draw-per-combo loop exactly.
        let sample_idx: Vec<usize> = (0..num_combos)
            .map(|_| rng.gen_range(0..train.len()))
            .collect();

        // Group combos sharing a (dilation, sample) pair: all 84 kernels
        // of a dilation usually land on a handful of samples, and one
        // prepare_dilation serves the whole group.
        let mut grouped: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (combo, &s) in sample_idx.iter().enumerate() {
            grouped
                .entry((combo / NUM_KERNELS, s))
                .or_default()
                .push(combo);
        }
        let groups: Vec<((usize, usize), Vec<usize>)> = grouped.into_iter().collect();

        // Biases: for each combo, convolve the drawn training example
        // and take low-discrepancy quantiles of the output. The quantile
        // sequence position depends only on the combo's global feature
        // index, so groups can run in any order (and in parallel).
        let phi = 0.618_033_988_749_894_9_f64; // golden-ratio sequence
        let mut biases = vec![0.0_f64; num_combos * features_per_combo];
        let group_biases: Vec<Vec<(usize, Vec<f64>)>> = par_map_init(
            &groups,
            || ConvScratch::new(input_length),
            |scratch, group| {
                let ((d_idx, s_idx), combos) = group;
                scratch.prepare_dilation(train[*s_idx].borrow(), dilations[*d_idx]);
                combos
                    .iter()
                    .map(|&combo| {
                        let conv = scratch.convolve_prepared(
                            &channel_subsets[combo],
                            kernels[combo % NUM_KERNELS],
                            paddings[combo],
                        );
                        let mut sorted = conv.to_vec();
                        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in convolution"));
                        let mut bs = Vec::with_capacity(features_per_combo);
                        for f in 0..features_per_combo {
                            let feature_counter = (combo * features_per_combo + f + 1) as u64;
                            let q = (feature_counter as f64 * phi).fract();
                            let pos = q * (sorted.len() - 1) as f64;
                            let i0 = pos.floor() as usize;
                            let frac = pos - i0 as f64;
                            let b = if i0 + 1 < sorted.len() {
                                sorted[i0] * (1.0 - frac) + sorted[i0 + 1] * frac
                            } else {
                                sorted[i0]
                            };
                            bs.push(b);
                        }
                        (combo, bs)
                    })
                    .collect()
            },
        );
        for group in group_biases {
            for (combo, bs) in group {
                biases[combo * features_per_combo..][..features_per_combo].copy_from_slice(&bs);
            }
        }

        Ok(Self {
            input_length,
            num_channels,
            dilations,
            features_per_combo,
            channel_subsets,
            paddings,
            biases,
            kernels,
        })
    }

    /// Exact number of features produced per series.
    pub fn num_output_features(&self) -> usize {
        self.dilations.len() * NUM_KERNELS * self.features_per_combo
    }

    /// Input length this transform was fitted for.
    pub fn input_length(&self) -> usize {
        self.input_length
    }

    /// Channel count this transform was fitted for.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Transforms one series into its PPV feature vector.
    ///
    /// Allocates a fresh [`ConvScratch`] per call; in loops, prefer
    /// [`MiniRocket::transform_one_with`] (reusing one scratch) or the
    /// batch [`MiniRocket::transform`].
    ///
    /// # Panics
    ///
    /// Panics if the series length or channel count differs from the
    /// training data (P²Auth's segmentation guarantees fixed shapes).
    pub fn transform_one(&self, series: &MultiSeries) -> Vec<f64> {
        let mut scratch = ConvScratch::new(self.input_length);
        self.transform_one_with(series, &mut scratch)
    }

    /// Transforms one series, reusing the caller's scratch buffers.
    ///
    /// Equivalent to [`MiniRocket::transform_one`] but allocation-free
    /// after the scratch's first use at this shape.
    ///
    /// # Panics
    ///
    /// Panics if the series shape differs from the training data.
    pub fn transform_one_with(&self, series: &MultiSeries, scratch: &mut ConvScratch) -> Vec<f64> {
        let _span = p2auth_obs::span!("rocket.transform");
        p2auth_obs::counter!("rocket.transform.series").incr();
        let mut out = Vec::with_capacity(self.num_output_features());
        self.transform_into(series, scratch, &mut out);
        out
    }

    /// Appends the feature vector of `series` onto `out`.
    ///
    /// This is the allocation-free core of the transform: given a warm
    /// scratch and an `out` with sufficient capacity, no heap
    /// allocation occurs. Auth-path callers that score every keystroke
    /// should reuse both across calls (clear `out`, keep its capacity)
    /// instead of going through [`MiniRocket::transform_one`].
    pub fn transform_into(
        &self,
        series: &MultiSeries,
        scratch: &mut ConvScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(series.len(), self.input_length, "series length mismatch");
        assert_eq!(
            series.num_channels(),
            self.num_channels,
            "channel count mismatch"
        );
        for (d_idx, &dilation) in self.dilations.iter().enumerate() {
            scratch.prepare_dilation(series, dilation);
            for (k_idx, kernel) in self.kernels.iter().enumerate() {
                let combo = d_idx * NUM_KERNELS + k_idx;
                let conv = scratch.convolve_prepared(
                    &self.channel_subsets[combo],
                    *kernel,
                    self.paddings[combo],
                );
                let base = combo * self.features_per_combo;
                for &bias in &self.biases[base..base + self.features_per_combo] {
                    out.push(ppv(conv, bias));
                }
            }
        }
    }

    /// Transforms a batch of series into a contiguous row-major
    /// [`FeatureMatrix`], one feature row per input.
    ///
    /// With the default `parallel` feature the batch fans out across
    /// threads, each worker reusing one [`ConvScratch`] and writing a
    /// contiguous run of rows; rows are bit-identical to calling
    /// [`MiniRocket::transform_one`] per series, in order.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MiniRocket::transform_one`].
    pub fn transform<S>(&self, series: &[S]) -> FeatureMatrix
    where
        S: Borrow<MultiSeries> + Sync,
    {
        let _span = p2auth_obs::span!("rocket.transform");
        let dim = self.num_output_features();
        if series.is_empty() {
            return FeatureMatrix::with_capacity(0, dim);
        }
        p2auth_obs::counter!("rocket.transform.series").add(series.len() as u64);
        p2auth_obs::event!(
            "rocket.transform",
            "feature_matrix",
            rows = series.len(),
            cols = dim,
        );
        let threads = num_threads().min(series.len());
        let chunk_len = series.len().div_ceil(threads.max(1));
        let chunks: Vec<&[S]> = series.chunks(chunk_len).collect();
        let flats: Vec<Vec<f64>> = par_map_init(
            &chunks,
            || ConvScratch::new(self.input_length),
            |scratch, chunk| {
                let mut flat = Vec::with_capacity(chunk.len() * dim);
                for s in chunk.iter() {
                    self.transform_into(s.borrow(), scratch, &mut flat);
                }
                flat
            },
        );
        let mut data = Vec::with_capacity(series.len() * dim);
        for mut f in flats {
            data.append(&mut f);
        }
        FeatureMatrix::from_flat(data, dim)
    }
}

/// Fixed chunk width for the hand-chunked inner loops below. Eight f64
/// lanes span two 256-bit (or four 128-bit) vector registers, enough
/// for the autovectorizer to keep the fused accumulation busy without
/// spilling on the narrowest targets we build for.
pub(crate) const LANES: usize = 8;

/// Number of values strictly greater than `bias`, branchlessly: each
/// comparison becomes a 0/1 integer added to the lane accumulator, so
/// there is no data-dependent branch and the loop vectorizes as a
/// compare-and-accumulate.
pub(crate) fn ppv_count(conv: &[f64], bias: f64) -> usize {
    let mut chunks = conv.chunks_exact(LANES);
    let mut count = 0_usize;
    for c in &mut chunks {
        let mut lane = 0_usize;
        for &v in c {
            lane += usize::from(v > bias);
        }
        count += lane;
    }
    for &v in chunks.remainder() {
        count += usize::from(v > bias);
    }
    count
}

/// Proportion of values strictly greater than `bias` (paper Eq. (6),
/// written there with the sign function over `X * W_d − b`).
pub(crate) fn ppv(conv: &[f64], bias: f64) -> f64 {
    if conv.is_empty() {
        return 0.0;
    }
    ppv_count(conv, bias) as f64 / conv.len() as f64
}

/// Fused `out[i] += 3·(t0[i] + t1[i] + t2[i]) − s9[i]` over equal-length
/// slices, in fixed-width chunks of [`LANES`].
///
/// The chunked body indexes five equal-length arrays with the same
/// constant trip count, which is the shape LLVM's loop vectorizer
/// reliably turns into packed FMA/add sequences; the remainder loop
/// handles the final `len % LANES` elements. Both loops perform the
/// identical per-element expression, so results are bit-identical to
/// the straight-line scalar loop.
#[inline]
fn fused_accumulate(out: &mut [f64], t0: &[f64], t1: &[f64], t2: &[f64], s9: &[f64]) {
    let mut o = out.chunks_exact_mut(LANES);
    let mut a = t0.chunks_exact(LANES);
    let mut b = t1.chunks_exact(LANES);
    let mut c = t2.chunks_exact(LANES);
    let mut s = s9.chunks_exact(LANES);
    for ((((oc, ac), bc), cc), sc) in (&mut o).zip(&mut a).zip(&mut b).zip(&mut c).zip(&mut s) {
        for i in 0..LANES {
            oc[i] += 3.0 * (ac[i] + bc[i] + cc[i]) - sc[i];
        }
    }
    for ((((o, &a), &b), &c), &s) in o
        .into_remainder()
        .iter_mut()
        .zip(a.remainder())
        .zip(b.remainder())
        .zip(c.remainder())
        .zip(s.remainder())
    {
        *o += 3.0 * (a + b + c) - s;
    }
}

/// Chunked elementwise `acc[i] += tap[i]` (see [`fused_accumulate`] for
/// why the fixed-width chunking helps the vectorizer). Bit-identical to
/// the scalar loop.
#[inline]
fn add_assign(acc: &mut [f64], tap: &[f64]) {
    let mut a = acc.chunks_exact_mut(LANES);
    let mut t = tap.chunks_exact(LANES);
    for (ac, tc) in (&mut a).zip(&mut t) {
        for i in 0..LANES {
            ac[i] += tc[i];
        }
    }
    for (a, &t) in a.into_remainder().iter_mut().zip(t.remainder()) {
        *a += t;
    }
}

/// Samples a channel subset with exponentially distributed size, per the
/// multivariate MiniRocket scheme.
fn sample_channel_subset(rng: &mut StdRng, num_channels: usize) -> Vec<usize> {
    if num_channels == 1 {
        return vec![0];
    }
    let max_exp = (num_channels as f64).log2();
    let size = 2.0_f64.powf(rng.gen_range(0.0..=max_exp)).floor() as usize;
    let size = size.clamp(1, num_channels);
    // Partial Fisher-Yates for a random subset.
    let mut idxs: Vec<usize> = (0..num_channels).collect();
    for i in 0..size {
        let j = rng.gen_range(i..num_channels);
        idxs.swap(i, j);
    }
    idxs.truncate(size);
    idxs.sort_unstable();
    idxs
}

/// Reusable scratch buffers for dilated convolution.
///
/// For a dilation `d`, the convolution of a zero-sum MiniRocket kernel
/// decomposes as `C[i] = 3·S3[i] − S9[i]` where `S9` sums all nine
/// dilated taps and `S3` sums the three high-weight taps. `S9` and the
/// shifted tap signals are shared across the 84 kernels of each
/// dilation, which is what makes MiniRocket fast.
///
/// All buffers are flat and contiguous — shifted taps are laid out
/// `[channel][tap][i]` in one allocation — and sized lazily by
/// [`ConvScratch::prepare_dilation`]; preparations at a previously seen
/// shape reuse them without allocating, and shape changes (length or
/// channel count) resize in place, so one scratch can serve an
/// arbitrary number of dilations, kernels, series and model shapes.
pub struct ConvScratch {
    len: usize,
    /// Channel count the buffers are currently sized for.
    channels: usize,
    /// Flat per-channel, per-tap shifted signals:
    /// `shifted[(ch * 9 + tap) * len + i]`.
    shifted: Vec<f64>,
    /// Flat per-channel full 9-tap sums: `s9[ch * len + i]`.
    s9: Vec<f64>,
    out: Vec<f64>,
    prepared_dilation: Option<usize>,
}

/// Compact: buffer contents are transient per-dilation state, so only
/// the shape is worth printing.
impl std::fmt::Debug for ConvScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConvScratch")
            .field("len", &self.len)
            .field("channels", &self.channels)
            .field("prepared_dilation", &self.prepared_dilation)
            .finish_non_exhaustive()
    }
}

impl ConvScratch {
    /// Creates scratch pre-sized for series of length `len` (a hint —
    /// the scratch resizes itself if prepared at a different length).
    /// Tap and sum buffers are sized lazily on the first preparation
    /// (they depend on the channel count).
    pub fn new(len: usize) -> Self {
        Self {
            len,
            channels: 0,
            shifted: Vec::new(),
            s9: Vec::new(),
            out: vec![0.0; len],
            prepared_dilation: None,
        }
    }

    /// Precomputes shifted tap signals and 9-tap sums for every channel
    /// at one dilation, reusing the existing buffers when shapes match.
    ///
    /// The scratch resizes itself when the series shape (length or
    /// channel count) differs from the previous preparation, so one
    /// scratch can serve models fitted at different window lengths
    /// (e.g. a profile's full-window and per-keystroke models) —
    /// allocation-free once it has seen the largest shape.
    pub(crate) fn prepare_dilation(&mut self, series: &MultiSeries, dilation: usize) {
        let half = KERNEL_LENGTH / 2;
        let n = series.len();
        let nch = series.num_channels();
        if n != self.len || nch != self.channels {
            self.len = n;
            self.channels = nch;
            self.shifted.clear();
            self.shifted.resize(nch * KERNEL_LENGTH * n, 0.0);
            self.s9.clear();
            self.s9.resize(nch * n, 0.0);
            self.out.clear();
            self.out.resize(n, 0.0);
        }
        for ch in 0..nch {
            let x = series.channel(ch);
            let ch_base = ch * KERNEL_LENGTH * n;
            for j in 0..KERNEL_LENGTH {
                let tap = &mut self.shifted[ch_base + j * n..ch_base + (j + 1) * n];
                if j >= half {
                    // Shift left: tap[i] = x[i + off], zero-padded tail.
                    let off = (j - half) * dilation;
                    if off >= n {
                        tap.fill(0.0);
                    } else {
                        tap[..n - off].copy_from_slice(&x[off..]);
                        tap[n - off..].fill(0.0);
                    }
                } else {
                    // Shift right: tap[i] = x[i - off], zero-padded head.
                    let off = (half - j) * dilation;
                    if off >= n {
                        tap.fill(0.0);
                    } else {
                        tap[off..].copy_from_slice(&x[..n - off]);
                        tap[..off].fill(0.0);
                    }
                }
            }
            // Accumulate taps in index order so the sum's floating-point
            // association matches a straightforward tap-major loop.
            let s9 = &mut self.s9[ch * n..(ch + 1) * n];
            s9.fill(0.0);
            for j in 0..KERNEL_LENGTH {
                let tap = &self.shifted[ch_base + j * n..ch_base + (j + 1) * n];
                add_assign(s9, tap);
            }
        }
        self.prepared_dilation = Some(dilation);
    }

    /// Convolution for one kernel over a channel subset, using buffers
    /// prepared by [`ConvScratch::prepare_dilation`].
    ///
    /// When `padding` is true the full "same"-padded output (length
    /// `len`) is returned. When `padding` is false the output is
    /// restricted to the valid region `[margin, len - margin)` with
    /// `margin = 4 · dilation` — **except** in the degenerate case where
    /// the margins meet or cross (`margin >= len - margin`, i.e. the
    /// dilated kernel barely fits): there is then no valid interior, and
    /// the method deliberately falls back to returning the full padded
    /// output rather than an empty slice, so downstream quantile/PPV
    /// pooling always has data to work with. This fallback is pinned by
    /// `valid_padding_degenerate_falls_back_to_padded` and must be
    /// preserved by refactors: fitted biases depend on it.
    pub(crate) fn convolve_prepared(
        &mut self,
        subset: &[usize],
        kernel: [usize; 3],
        padding: bool,
    ) -> &[f64] {
        let dilation = self.prepared_dilation.expect("prepare_dilation not called");
        let n = self.len;
        self.out.fill(0.0);
        let out = &mut self.out;
        for &ch in subset {
            let ch_base = ch * KERNEL_LENGTH * n;
            let t0 = &self.shifted[ch_base + kernel[0] * n..ch_base + kernel[0] * n + n];
            let t1 = &self.shifted[ch_base + kernel[1] * n..ch_base + kernel[1] * n + n];
            let t2 = &self.shifted[ch_base + kernel[2] * n..ch_base + kernel[2] * n + n];
            let s9 = &self.s9[ch * n..ch * n + n];
            fused_accumulate(out, t0, t1, t2, s9);
        }
        if padding {
            &self.out
        } else {
            let margin = (KERNEL_LENGTH / 2) * dilation;
            let end = n.saturating_sub(margin);
            if margin >= end {
                // Degenerate: no valid interior; fall back to the padded
                // output (see method docs — this is load-bearing).
                &self.out
            } else {
                &self.out[margin..end]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::kernel_weights;
    use proptest::prelude::*;

    fn sine_series(n: usize, freq: f64, channels: usize) -> MultiSeries {
        let data: Vec<Vec<f64>> = (0..channels)
            .map(|c| {
                (0..n)
                    .map(|i| ((i as f64 + c as f64 * 3.0) * freq).sin())
                    .collect()
            })
            .collect();
        MultiSeries::new(data).unwrap()
    }

    fn default_fit(train: &[MultiSeries]) -> MiniRocket {
        MiniRocket::fit(&MiniRocketConfig::default(), train).unwrap()
    }

    /// The historical fit loop: one RNG draw and one full
    /// `prepare_dilation` per combo, biases pushed in combo order.
    /// Kept verbatim as the reference the grouped/parallel
    /// [`MiniRocket::fit`] must match bit-for-bit.
    fn fit_reference(config: &MiniRocketConfig, train: &[MultiSeries]) -> MiniRocket {
        let first = train.first().expect("non-empty");
        let input_length = first.len();
        let num_channels = first.num_channels();
        assert!(input_length >= KERNEL_LENGTH);

        let mut rng = StdRng::seed_from_u64(config.seed);
        let kernels = kernel_indices();

        let max_dilation = ((input_length - 1) / (KERNEL_LENGTH - 1)).max(1);
        let features_per_kernel = (config.num_features / NUM_KERNELS).max(1);
        let num_dilations = config
            .max_dilations_per_kernel
            .min(features_per_kernel)
            .max(1);
        let features_per_combo = (features_per_kernel / num_dilations).max(1);
        let max_exp = (max_dilation as f64).log2();
        let dilations: Vec<usize> = (0..num_dilations)
            .map(|i| {
                let e = if num_dilations == 1 {
                    0.0
                } else {
                    max_exp * i as f64 / (num_dilations - 1) as f64
                };
                (2.0_f64.powf(e).floor() as usize).clamp(1, max_dilation)
            })
            .collect();

        let num_combos = dilations.len() * NUM_KERNELS;
        let mut channel_subsets = Vec::with_capacity(num_combos);
        for _ in 0..num_combos {
            channel_subsets.push(sample_channel_subset(&mut rng, num_channels));
        }
        let paddings: Vec<bool> = (0..num_combos).map(|c| c % 2 == 0).collect();

        let mut biases = Vec::with_capacity(num_combos * features_per_combo);
        let phi = 0.618_033_988_749_894_9_f64;
        let mut feature_counter = 0_u64;
        let mut scratch = ConvScratch::new(input_length);
        for (d_idx, &dilation) in dilations.iter().enumerate() {
            for (k_idx, kernel) in kernels.iter().enumerate() {
                let combo = d_idx * NUM_KERNELS + k_idx;
                let sample = &train[rng.gen_range(0..train.len())];
                scratch.prepare_dilation(sample, dilation);
                let conv =
                    scratch.convolve_prepared(&channel_subsets[combo], *kernel, paddings[combo]);
                let mut sorted = conv.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in convolution"));
                for _ in 0..features_per_combo {
                    feature_counter += 1;
                    let q = (feature_counter as f64 * phi).fract();
                    let pos = q * (sorted.len() - 1) as f64;
                    let i0 = pos.floor() as usize;
                    let frac = pos - i0 as f64;
                    let b = if i0 + 1 < sorted.len() {
                        sorted[i0] * (1.0 - frac) + sorted[i0 + 1] * frac
                    } else {
                        sorted[i0]
                    };
                    biases.push(b);
                }
            }
        }

        MiniRocket {
            input_length,
            num_channels,
            dilations,
            features_per_combo,
            channel_subsets,
            paddings,
            biases,
            kernels,
        }
    }

    #[test]
    fn feature_count_matches() {
        let train = vec![sine_series(128, 0.2, 2), sine_series(128, 0.5, 2)];
        let r = default_fit(&train);
        let f = r.transform_one(&train[0]);
        assert_eq!(f.len(), r.num_output_features());
        assert!(f.len() >= NUM_KERNELS, "at least one feature per kernel");
    }

    #[test]
    fn features_are_ppv_in_unit_interval() {
        let train = vec![sine_series(100, 0.3, 3), sine_series(100, 0.8, 3)];
        let r = default_fit(&train);
        for s in &train {
            for v in r.transform_one(s) {
                assert!((0.0..=1.0).contains(&v), "ppv {v} out of range");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let train = vec![sine_series(96, 0.4, 2), sine_series(96, 0.9, 2)];
        let cfg = MiniRocketConfig {
            seed: 42,
            ..Default::default()
        };
        let r1 = MiniRocket::fit(&cfg, &train).unwrap();
        let r2 = MiniRocket::fit(&cfg, &train).unwrap();
        assert_eq!(r1.transform_one(&train[0]), r2.transform_one(&train[0]));
    }

    #[test]
    fn different_seeds_differ() {
        let train = vec![sine_series(96, 0.4, 2), sine_series(96, 0.9, 2)];
        let r1 = MiniRocket::fit(
            &MiniRocketConfig {
                seed: 1,
                ..Default::default()
            },
            &train,
        )
        .unwrap();
        let r2 = MiniRocket::fit(
            &MiniRocketConfig {
                seed: 2,
                ..Default::default()
            },
            &train,
        )
        .unwrap();
        assert_ne!(r1.transform_one(&train[0]), r2.transform_one(&train[0]));
    }

    #[test]
    fn fit_accepts_borrowed_series() {
        let a = sine_series(96, 0.4, 2);
        let b = sine_series(96, 0.9, 2);
        let cfg = MiniRocketConfig::default();
        let owned = MiniRocket::fit(&cfg, &[a.clone(), b.clone()]).unwrap();
        let borrowed = MiniRocket::fit(&cfg, &[&a, &b]).unwrap();
        assert_eq!(owned.transform_one(&a), borrowed.transform_one(&a));
    }

    #[test]
    fn grouped_fit_matches_reference_bytes() {
        // The regrouped (prepare-once-per-(dilation, sample)) fit must
        // serialize byte-identically to the historical per-combo loop.
        for (len, channels, seed) in [(90, 2, 7_u64), (128, 4, 99), (64, 1, 0xdead_beef)] {
            let train: Vec<MultiSeries> = (0..5)
                .map(|i| sine_series(len, 0.2 + 0.17 * i as f64, channels))
                .collect();
            let cfg = MiniRocketConfig {
                seed,
                ..Default::default()
            };
            let fitted = MiniRocket::fit(&cfg, &train).unwrap();
            let reference = fit_reference(&cfg, &train);
            let a = serde_json::to_string(&fitted).unwrap();
            let b = serde_json::to_string(&reference).unwrap();
            assert_eq!(a, b, "len={len} ch={channels} seed={seed}");
        }
    }

    #[test]
    fn batch_transform_matches_transform_one() {
        let train = vec![sine_series(90, 0.3, 2), sine_series(90, 0.8, 2)];
        let r = default_fit(&train);
        let probes: Vec<MultiSeries> = (0..7)
            .map(|i| sine_series(90, 0.1 + 0.2 * i as f64, 2))
            .collect();
        let m = r.transform(&probes);
        assert_eq!(m.num_rows(), probes.len());
        assert_eq!(m.num_cols(), r.num_output_features());
        for (i, p) in probes.iter().enumerate() {
            assert_eq!(m.row(i), r.transform_one(p).as_slice(), "row {i}");
        }
    }

    #[test]
    fn transform_one_with_reuses_scratch_across_series() {
        let train = vec![sine_series(90, 0.3, 2), sine_series(90, 0.8, 2)];
        let r = default_fit(&train);
        let mut scratch = ConvScratch::new(90);
        for s in &train {
            assert_eq!(r.transform_one_with(s, &mut scratch), r.transform_one(s));
        }
    }

    #[test]
    fn offset_invariance() {
        // Zero-sum kernels make the convolution invariant to adding a
        // constant; with "same" padding edge effects change conv values
        // near the boundary, so compare with a generous tolerance on the
        // feature vector instead of exact equality.
        let base: Vec<f64> = (0..200).map(|i| (i as f64 * 0.25).sin()).collect();
        let shifted: Vec<f64> = base.iter().map(|v| v + 100.0).collect();
        let train = vec![MultiSeries::univariate(base.clone())];
        let r = default_fit(&train);
        let f1 = r.transform_one(&MultiSeries::univariate(base));
        let f2 = r.transform_one(&MultiSeries::univariate(shifted));
        let mean_diff: f64 =
            f1.iter().zip(&f2).map(|(a, b)| (a - b).abs()).sum::<f64>() / f1.len() as f64;
        assert!(mean_diff < 0.1, "mean ppv diff {mean_diff}");
    }

    #[test]
    fn separates_distinct_signals() {
        // Feature vectors of very different signals should differ more
        // than feature vectors of noisy copies of the same signal.
        let a = sine_series(128, 0.2, 1);
        let b = sine_series(128, 1.1, 1);
        let a_noisy = MultiSeries::univariate(
            a.channel(0)
                .iter()
                .enumerate()
                .map(|(i, v)| v + 0.01 * ((i * 7) % 3) as f64)
                .collect(),
        );
        let r = default_fit(&[a.clone(), b.clone()]);
        let fa = r.transform_one(&a);
        let fb = r.transform_one(&b);
        let fan = r.transform_one(&a_noisy);
        let dist = |x: &[f64], y: &[f64]| -> f64 {
            x.iter()
                .zip(y)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(&fa, &fb) > 3.0 * dist(&fa, &fan));
    }

    #[test]
    fn errors_on_bad_training_sets() {
        assert!(matches!(
            MiniRocket::fit(&MiniRocketConfig::default(), &[] as &[MultiSeries]),
            Err(FitError::EmptyTrainingSet)
        ));
        let a = sine_series(64, 0.3, 1);
        let b = sine_series(65, 0.3, 1);
        assert!(matches!(
            MiniRocket::fit(&MiniRocketConfig::default(), &[a.clone(), b]),
            Err(FitError::UnequalLengths { .. })
        ));
        let c = sine_series(64, 0.3, 2);
        assert!(matches!(
            MiniRocket::fit(&MiniRocketConfig::default(), &[a, c]),
            Err(FitError::UnequalChannels { .. })
        ));
        let tiny = MultiSeries::univariate(vec![1.0; 5]);
        assert!(matches!(
            MiniRocket::fit(&MiniRocketConfig::default(), &[tiny]),
            Err(FitError::TooShort { .. })
        ));
    }

    #[test]
    fn decomposition_matches_direct_convolution() {
        // Verify C = 3*S3 - S9 equals the explicit weighted convolution
        // for a handful of kernels at dilation 1 with same padding.
        let x: Vec<f64> = (0..40).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
        let series = MultiSeries::univariate(x.clone());
        let mut scratch = ConvScratch::new(x.len());
        scratch.prepare_dilation(&series, 1);
        for kernel in kernel_indices().into_iter().step_by(17) {
            let got = scratch.convolve_prepared(&[0], kernel, true).to_vec();
            let w = kernel_weights(kernel);
            let n = x.len() as i64;
            for (i, &g) in got.iter().enumerate() {
                let mut expect = 0.0;
                for (j, &wj) in w.iter().enumerate() {
                    let idx = i as i64 + j as i64 - 4;
                    if idx >= 0 && idx < n {
                        expect += wj * x[idx as usize];
                    }
                }
                assert!(
                    (g - expect).abs() < 1e-9,
                    "kernel {kernel:?} at {i}: {g} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn valid_padding_region_shorter() {
        let x = sine_series(64, 0.3, 1);
        let mut scratch = ConvScratch::new(64);
        scratch.prepare_dilation(&x, 4);
        let padded_len = scratch.convolve_prepared(&[0], [0, 4, 8], true).len();
        let valid_len = scratch.convolve_prepared(&[0], [0, 4, 8], false).len();
        assert_eq!(padded_len, 64);
        assert_eq!(valid_len, 64 - 2 * 16);
    }

    #[test]
    fn valid_padding_degenerate_falls_back_to_padded() {
        // len = 20, dilation = 4: margin = 16 >= end = 4, so there is no
        // valid interior and convolve_prepared must return the full
        // padded output instead of an empty slice. Pinned on purpose —
        // fitted biases depend on this fallback (see method docs).
        let x = sine_series(20, 0.3, 1);
        let mut scratch = ConvScratch::new(20);
        scratch.prepare_dilation(&x, 4);
        let padded = scratch.convolve_prepared(&[0], [0, 4, 8], true).to_vec();
        let valid = scratch.convolve_prepared(&[0], [0, 4, 8], false).to_vec();
        assert_eq!(
            valid.len(),
            20,
            "degenerate valid padding must not truncate"
        );
        assert_eq!(valid, padded, "fallback must equal the padded output");
    }

    #[test]
    fn scratch_reuse_across_dilations_and_channel_counts() {
        // One scratch must serve different dilations and channel counts
        // without stale data leaking between preparations.
        let mut scratch = ConvScratch::new(64);
        let one = sine_series(64, 0.3, 1);
        let four = sine_series(64, 0.5, 4);
        scratch.prepare_dilation(&four, 2);
        let via_reused = {
            scratch.prepare_dilation(&one, 4);
            scratch.convolve_prepared(&[0], [1, 3, 5], true).to_vec()
        };
        let mut fresh = ConvScratch::new(64);
        fresh.prepare_dilation(&one, 4);
        let via_fresh = fresh.convolve_prepared(&[0], [1, 3, 5], true).to_vec();
        assert_eq!(via_reused, via_fresh);
    }

    #[test]
    fn scratch_auto_resizes_across_lengths() {
        // One scratch serving models at different window lengths (the
        // arena path shares a scratch across full/boost/per-key models)
        // must produce the same results as fresh scratch at each shape.
        let mut scratch = ConvScratch::new(64);
        let long = sine_series(90, 0.4, 2);
        let short = sine_series(48, 0.7, 3);
        for series in [&long, &short, &long] {
            scratch.prepare_dilation(series, 2);
            let via_reused = scratch.convolve_prepared(&[0], [1, 4, 7], true).to_vec();
            let mut fresh = ConvScratch::new(series.len());
            fresh.prepare_dilation(series, 2);
            let via_fresh = fresh.convolve_prepared(&[0], [1, 4, 7], true).to_vec();
            assert_eq!(via_reused, via_fresh, "len {}", series.len());
        }
    }

    #[test]
    fn branchless_ppv_matches_filter_count() {
        let conv: Vec<f64> = (0..103).map(|i| ((i * 31) % 17) as f64 - 8.5).collect();
        for bias in [-9.0, -1.0, 0.0, 0.25, 8.0, 100.0] {
            let branchy = conv.iter().filter(|&&v| v > bias).count();
            assert_eq!(ppv_count(&conv, bias), branchy, "bias {bias}");
            let expect = branchy as f64 / conv.len() as f64;
            assert_eq!(ppv(&conv, bias), expect, "bias {bias}");
        }
        assert_eq!(ppv(&[], 0.0), 0.0);
    }

    #[test]
    fn chunked_kernels_match_scalar_reference() {
        // The chunked fused_accumulate / add_assign bodies must be
        // bit-identical to the straight-line scalar expressions they
        // replaced, including at lengths not divisible by LANES.
        for n in [1, 7, 8, 9, 63, 64, 65, 90] {
            let t0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
            let t1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            let t2: Vec<f64> = (0..n).map(|i| (i as f64) * 0.01 - 0.3).collect();
            let s9: Vec<f64> = (0..n).map(|i| ((i * i) % 13) as f64 - 6.0).collect();
            let mut out = vec![0.5; n];
            let mut expect = out.clone();
            fused_accumulate(&mut out, &t0, &t1, &t2, &s9);
            for i in 0..n {
                expect[i] += 3.0 * (t0[i] + t1[i] + t2[i]) - s9[i];
            }
            assert_eq!(out, expect, "fused_accumulate n={n}");

            let mut acc = s9.clone();
            let mut acc_expect = s9.clone();
            add_assign(&mut acc, &t0);
            for i in 0..n {
                acc_expect[i] += t0[i];
            }
            assert_eq!(acc, acc_expect, "add_assign n={n}");
        }
    }

    #[test]
    fn channel_subsets_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for c in 1..=8 {
            for _ in 0..50 {
                let s = sample_channel_subset(&mut rng, c);
                assert!(!s.is_empty() && s.len() <= c);
                assert!(s.iter().all(|&i| i < c));
                let mut d = s.clone();
                d.dedup();
                assert_eq!(d.len(), s.len(), "duplicate channels");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The grouped, parallel fit serializes byte-identically to the
        /// historical serial per-combo fit across random shapes/seeds.
        #[test]
        fn prop_grouped_fit_bit_identical(
            len in 16_usize..120,
            channels in 1_usize..5,
            n_train in 1_usize..6,
            seed in any::<u64>(),
            num_features in 84_usize..1000,
        ) {
            let train: Vec<MultiSeries> = (0..n_train)
                .map(|i| sine_series(len, 0.15 + 0.21 * i as f64, channels))
                .collect();
            let cfg = MiniRocketConfig { seed, num_features, ..Default::default() };
            let fitted = MiniRocket::fit(&cfg, &train).unwrap();
            let reference = fit_reference(&cfg, &train);
            prop_assert_eq!(
                serde_json::to_string(&fitted).unwrap(),
                serde_json::to_string(&reference).unwrap()
            );
        }

        /// Parallel batch rows are bit-identical to serial
        /// `transform_one` across random shapes/seeds.
        #[test]
        fn prop_batch_rows_bit_identical(
            len in 16_usize..100,
            channels in 1_usize..4,
            n_probe in 1_usize..9,
            seed in any::<u64>(),
        ) {
            let train = vec![
                sine_series(len, 0.3, channels),
                sine_series(len, 0.9, channels),
            ];
            let cfg = MiniRocketConfig { seed, num_features: 168, ..Default::default() };
            let r = MiniRocket::fit(&cfg, &train).unwrap();
            let probes: Vec<MultiSeries> = (0..n_probe)
                .map(|i| sine_series(len, 0.05 + 0.3 * i as f64, channels))
                .collect();
            let m = r.transform(&probes);
            prop_assert_eq!(m.num_rows(), probes.len());
            for (i, p) in probes.iter().enumerate() {
                prop_assert_eq!(m.row(i), r.transform_one(p).as_slice());
            }
        }
    }
}
