//! Property tests: the fused transform-and-score path is bit-identical
//! to materialize-then-dot across random profiles and segments.
//!
//! Runs in the networked CI lane (proptest is a dev-dependency the
//! offline container cannot resolve); the deterministic seeds are also
//! covered by the unit tests in `src/fused.rs`.

use p2auth_rocket::{ConvScratch, FusedScorer, MiniRocket, MiniRocketConfig, MultiSeries};
use proptest::prelude::*;

fn sine_series(n: usize, freq: f64, channels: usize) -> MultiSeries {
    let data: Vec<Vec<f64>> = (0..channels)
        .map(|c| {
            (0..n)
                .map(|i| ((i as f64 + c as f64 * 3.0) * freq).sin())
                .collect()
        })
        .collect();
    MultiSeries::new(data).unwrap()
}

/// Same expression as `p2auth_ml::linalg::dot`: sequential
/// multiply-accumulate from 0.0.
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_fused_score_bit_identical(
        len in 16_usize..120,
        channels in 1_usize..5,
        seed in any::<u64>(),
        num_features in 84_usize..1000,
        intercept in -2.0_f64..2.0,
        weight_scale in 0.01_f64..3.0,
    ) {
        let train: Vec<MultiSeries> = (0..3)
            .map(|i| sine_series(len, 0.15 + 0.21 * i as f64, channels))
            .collect();
        let cfg = MiniRocketConfig { seed, num_features, ..Default::default() };
        let rocket = MiniRocket::fit(&cfg, &train).unwrap();
        let weights: Vec<f64> = (0..rocket.num_output_features())
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
                ((h % 2000) as f64 / 1000.0 - 1.0) * weight_scale
            })
            .collect();
        let scorer = FusedScorer::new(&rocket, &weights, intercept);
        let mut scratch = ConvScratch::new(len);
        for probe in &train {
            let features = rocket.transform_one(probe);
            let expect = dot(&weights, &features) + intercept;
            let got = scorer.score(probe, &mut scratch);
            prop_assert_eq!(got.to_bits(), expect.to_bits(),
                "fused {} != materialized {}", got, expect);
        }
    }

    /// One scratch shared across scorers of different shapes (the
    /// arena usage pattern) stays bit-identical.
    #[test]
    fn prop_shared_scratch_across_shapes_bit_identical(
        len_a in 16_usize..80,
        len_b in 16_usize..80,
        seed in any::<u64>(),
    ) {
        let mut shared = ConvScratch::new(len_a);
        for len in [len_a, len_b, len_a] {
            let train = vec![
                sine_series(len, 0.3, 2),
                sine_series(len, 0.9, 2),
            ];
            let cfg = MiniRocketConfig { seed, num_features: 168, ..Default::default() };
            let rocket = MiniRocket::fit(&cfg, &train).unwrap();
            let weights: Vec<f64> = (0..rocket.num_output_features())
                .map(|i| (i % 7) as f64 - 3.0)
                .collect();
            let scorer = FusedScorer::new(&rocket, &weights, 0.5);
            let features = rocket.transform_one(&train[0]);
            let expect = dot(&weights, &features) + 0.5;
            let got = scorer.score(&train[0], &mut shared);
            prop_assert_eq!(got.to_bits(), expect.to_bits());
        }
    }
}
