//! Property tests for the MiniRocket transform.

use p2auth_rocket::{kernel_weights, MiniRocket, MiniRocketConfig, MultiSeries};
use proptest::prelude::*;

fn arb_series(len: usize, channels: usize) -> impl Strategy<Value = MultiSeries> {
    prop::collection::vec(
        prop::collection::vec(-10.0_f64..10.0, len..=len),
        channels..=channels,
    )
    .prop_map(|data| MultiSeries::new(data).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn features_always_in_unit_interval(
        a in arb_series(64, 2),
        b in arb_series(64, 2),
        probe in arb_series(64, 2),
        seed in any::<u64>(),
    ) {
        let cfg = MiniRocketConfig { num_features: 168, seed, ..Default::default() };
        let rocket = MiniRocket::fit(&cfg, &[a, b]).expect("fit");
        for f in rocket.transform_one(&probe) {
            prop_assert!((0.0..=1.0).contains(&f), "ppv {} out of range", f);
        }
    }

    #[test]
    fn transform_is_a_pure_function(a in arb_series(48, 1), seed in any::<u64>()) {
        let cfg = MiniRocketConfig { num_features: 84, seed, ..Default::default() };
        let rocket = MiniRocket::fit(&cfg, std::slice::from_ref(&a)).expect("fit");
        prop_assert_eq!(rocket.transform_one(&a), rocket.transform_one(&a));
    }

    #[test]
    fn batch_transform_rows_match_serial_transform_one(
        a in arb_series(72, 2),
        b in arb_series(72, 2),
        probes in prop::collection::vec(arb_series(72, 2), 1..8),
        seed in any::<u64>(),
    ) {
        // The (possibly parallel) batch path must be bit-identical to
        // serial per-series transforms, row for row.
        let cfg = MiniRocketConfig { num_features: 168, seed, ..Default::default() };
        let rocket = MiniRocket::fit(&cfg, &[a, b]).expect("fit");
        let matrix = rocket.transform(&probes);
        prop_assert_eq!(matrix.num_rows(), probes.len());
        prop_assert_eq!(matrix.num_cols(), rocket.num_output_features());
        for (i, p) in probes.iter().enumerate() {
            prop_assert_eq!(matrix.row(i), rocket.transform_one(p).as_slice());
        }
    }

    #[test]
    fn borrowed_and_owned_training_sets_agree(
        a in arb_series(48, 1),
        b in arb_series(48, 1),
        seed in any::<u64>(),
    ) {
        let cfg = MiniRocketConfig { num_features: 84, seed, ..Default::default() };
        let owned = MiniRocket::fit(&cfg, &[a.clone(), b.clone()]).expect("fit");
        let borrowed = MiniRocket::fit(&cfg, &[&a, &b]).expect("fit");
        prop_assert_eq!(owned.transform_one(&a), borrowed.transform_one(&a));
    }

    #[test]
    fn feature_count_independent_of_input_values(
        a in arb_series(48, 1),
        b in arb_series(48, 1),
    ) {
        let cfg = MiniRocketConfig { num_features: 168, ..Default::default() };
        let rocket = MiniRocket::fit(&cfg, std::slice::from_ref(&a)).expect("fit");
        prop_assert_eq!(
            rocket.transform_one(&a).len(),
            rocket.transform_one(&b).len()
        );
        prop_assert_eq!(rocket.transform_one(&a).len(), rocket.num_output_features());
    }
}

#[test]
fn kernel_weights_zero_sum_exhaustive() {
    for t in p2auth_rocket::kernel_indices() {
        assert_eq!(kernel_weights(t).iter().sum::<f64>(), 0.0);
    }
}
