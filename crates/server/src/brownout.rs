//! Brownout degradation ladder driven by SLO burn rate.
//!
//! PR 9's `SloTracker` can *say* the error budget is burning; this
//! module makes the server *do* something about it — deliberately, one
//! rung at a time, instead of failing closed:
//!
//! | rung | behaviour |
//! |---|---|
//! | `Normal` | full pipeline |
//! | `Brownout1` | skip optional obs work (per-shard breakdowns), zero the re-prompt budget |
//! | `Brownout2` | coverage-gated PIN-only fallback tier (the paper's `DegradedFallback`, served first) |
//! | `Shed` | new sessions shed with [`crate::ShedReason::Brownout`] |
//!
//! The ladder is evaluated every [`BrownoutConfig::eval_every`]
//! sessions against the tracker's multi-window burn-rate alert, and
//! moves with **hysteresis**: it climbs only after
//! [`BrownoutConfig::up_hold`] consecutive alerting evaluations and
//! descends only after [`BrownoutConfig::down_hold`] consecutive clean
//! ones — so a single noisy window cannot flap the fleet between
//! serving modes. Every transition is recorded as a typed
//! [`LadderTransition`] and counted.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use p2auth_obs::SloReport;

/// The ladder's rungs, mildest first. Ordered: a higher rung degrades
/// more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BrownoutLevel {
    /// Full pipeline.
    Normal,
    /// Skip optional observability work; no re-prompts.
    Brownout1,
    /// PIN-only fallback tier for sessions with good link coverage.
    Brownout2,
    /// Shed new sessions.
    Shed,
}

impl BrownoutLevel {
    /// All rungs, mildest first.
    pub const ALL: [BrownoutLevel; 4] = [
        BrownoutLevel::Normal,
        BrownoutLevel::Brownout1,
        BrownoutLevel::Brownout2,
        BrownoutLevel::Shed,
    ];

    /// Stable machine-readable name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::Brownout1 => "brownout1",
            BrownoutLevel::Brownout2 => "brownout2",
            BrownoutLevel::Shed => "shed",
        }
    }

    /// Rung index, 0 (`Normal`) to 3 (`Shed`).
    #[must_use]
    pub fn rung(self) -> usize {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::Brownout1 => 1,
            BrownoutLevel::Brownout2 => 2,
            BrownoutLevel::Shed => 3,
        }
    }

    fn from_rung(rung: usize) -> Self {
        Self::ALL[rung.min(3)]
    }
}

impl std::fmt::Display for BrownoutLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Ladder policy, carried inside [`crate::ServerConfig`]. `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Whether the ladder runs at all. Defaults off: a region without
    /// an SLO tracker has nothing to drive it.
    pub enabled: bool,
    /// Sessions between ladder evaluations.
    pub eval_every: u64,
    /// Consecutive alerting evaluations before climbing one rung.
    pub up_hold: u32,
    /// Consecutive clean evaluations before descending one rung.
    pub down_hold: u32,
    /// Minimum link coverage for the `Brownout2` PIN-only tier; an
    /// attempt below it falls through to the full pipeline (the
    /// paper's precedence rule: degraded fallback must not mask a
    /// poor-signal reject).
    pub pin_only_min_coverage: f64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            eval_every: 16,
            up_hold: 2,
            down_hold: 4,
            pin_only_min_coverage: 0.9,
        }
    }
}

/// One ladder move: a typed event in the serve report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderTransition {
    /// Rung before the move.
    pub from: BrownoutLevel,
    /// Rung after the move.
    pub to: BrownoutLevel,
    /// 1-based evaluation index at which the move happened.
    pub eval: u64,
    /// Fast-window burn rate that drove the evaluation.
    pub fast_burn: f64,
    /// Slow-window burn rate that drove the evaluation.
    pub slow_burn: f64,
}

#[derive(Debug, Default)]
struct LadderState {
    up_streak: u32,
    down_streak: u32,
    evals: u64,
    occupancy: [u64; 4],
    transitions: Vec<LadderTransition>,
}

/// The shared ladder: workers read the current rung with one relaxed
/// atomic load per session; evaluation (every `eval_every`-th session)
/// takes the state mutex.
#[derive(Debug)]
pub struct BrownoutLadder {
    cfg: BrownoutConfig,
    sessions: AtomicU64,
    current: AtomicU8,
    state: Mutex<LadderState>,
}

impl BrownoutLadder {
    /// A ladder at `Normal` with no history.
    #[must_use]
    pub fn new(cfg: BrownoutConfig) -> Self {
        Self {
            cfg,
            sessions: AtomicU64::new(0),
            current: AtomicU8::new(0),
            state: Mutex::new(LadderState::default()),
        }
    }

    /// The rung workers should serve at right now.
    #[must_use]
    pub fn level(&self) -> BrownoutLevel {
        BrownoutLevel::from_rung(self.current.load(Ordering::Relaxed) as usize)
    }

    /// Per-session hook: counts the session, and on every
    /// `eval_every`-th one evaluates the ladder against a fresh SLO
    /// report. Returns the rung for *this* session.
    pub fn on_session(&self, slo: &p2auth_obs::SloTracker) -> BrownoutLevel {
        let n = self.sessions.fetch_add(1, Ordering::Relaxed) + 1;
        let every = self.cfg.eval_every.max(1);
        if n % every == 0 {
            self.evaluate(&slo.report());
        }
        self.level()
    }

    /// One ladder evaluation against an SLO report. Public so tests
    /// and the chaos bench can drive the ladder deterministically.
    pub fn evaluate(&self, report: &SloReport) -> BrownoutLevel {
        #[allow(clippy::unwrap_used)] // INVARIANT: no panic while holding the lock.
        let mut st = self.state.lock().unwrap();
        st.evals += 1;
        let level = self.level();
        let mut next = level;
        if report.alert {
            st.up_streak += 1;
            st.down_streak = 0;
            if st.up_streak >= self.cfg.up_hold && level != BrownoutLevel::Shed {
                next = BrownoutLevel::from_rung(level.rung() + 1);
                st.up_streak = 0;
            }
        } else {
            st.down_streak += 1;
            st.up_streak = 0;
            if st.down_streak >= self.cfg.down_hold && level != BrownoutLevel::Normal {
                next = BrownoutLevel::from_rung(level.rung() - 1);
                st.down_streak = 0;
            }
        }
        if next != level {
            let eval = st.evals;
            st.transitions.push(LadderTransition {
                from: level,
                to: next,
                eval,
                fast_burn: report.fast_burn,
                slow_burn: report.slow_burn,
            });
            self.current
                .store(u8::try_from(next.rung()).unwrap_or(0), Ordering::Relaxed);
        }
        st.occupancy[next.rung()] += 1;
        next
    }

    /// Every transition so far, in order.
    #[must_use]
    pub fn transitions(&self) -> Vec<LadderTransition> {
        #[allow(clippy::unwrap_used)]
        self.state.lock().unwrap().transitions.clone()
    }

    /// Evaluations spent at each rung (indexed by
    /// [`BrownoutLevel::rung`]).
    #[must_use]
    pub fn occupancy(&self) -> [u64; 4] {
        #[allow(clippy::unwrap_used)]
        self.state.lock().unwrap().occupancy
    }

    /// Ladder evaluations run so far.
    #[must_use]
    pub fn evals(&self) -> u64 {
        #[allow(clippy::unwrap_used)]
        self.state.lock().unwrap().evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2auth_obs::{SloConfig, SloTracker};

    fn cfg() -> BrownoutConfig {
        BrownoutConfig {
            enabled: true,
            eval_every: 1,
            up_hold: 2,
            down_hold: 3,
            ..BrownoutConfig::default()
        }
    }

    fn report(alert: bool) -> SloReport {
        let t = SloTracker::new(SloConfig::default());
        // Drive a real tracker so the report carries consistent burn
        // numbers; `alert` is then forced for determinism.
        t.record_at(0, 1_000, alert);
        let mut r = t.report_at(0);
        r.alert = alert;
        r
    }

    #[test]
    fn ladder_climbs_only_after_up_hold_consecutive_alerts() {
        let ladder = BrownoutLadder::new(cfg());
        assert_eq!(ladder.evaluate(&report(true)), BrownoutLevel::Normal);
        assert_eq!(
            ladder.evaluate(&report(true)),
            BrownoutLevel::Brownout1,
            "second consecutive alert climbs"
        );
        // A clean window resets the streak: two more alerts needed.
        ladder.evaluate(&report(false));
        assert_eq!(ladder.evaluate(&report(true)), BrownoutLevel::Brownout1);
        assert_eq!(ladder.evaluate(&report(true)), BrownoutLevel::Brownout2);
    }

    #[test]
    fn ladder_descends_only_after_down_hold_clean_evals() {
        let ladder = BrownoutLadder::new(cfg());
        ladder.evaluate(&report(true));
        ladder.evaluate(&report(true));
        assert_eq!(ladder.level(), BrownoutLevel::Brownout1);
        ladder.evaluate(&report(false));
        ladder.evaluate(&report(false));
        assert_eq!(ladder.level(), BrownoutLevel::Brownout1, "holding");
        assert_eq!(
            ladder.evaluate(&report(false)),
            BrownoutLevel::Normal,
            "third clean eval releases"
        );
    }

    #[test]
    fn alternating_windows_do_not_flap_the_ladder() {
        let ladder = BrownoutLadder::new(cfg());
        for _ in 0..20 {
            ladder.evaluate(&report(true));
            ladder.evaluate(&report(false));
        }
        assert_eq!(ladder.level(), BrownoutLevel::Normal);
        assert!(
            ladder.transitions().is_empty(),
            "hysteresis absorbs alternating windows entirely"
        );
    }

    #[test]
    fn ladder_saturates_at_shed_and_records_occupancy() {
        let ladder = BrownoutLadder::new(cfg());
        for _ in 0..20 {
            ladder.evaluate(&report(true));
        }
        assert_eq!(ladder.level(), BrownoutLevel::Shed, "saturates, no panic");
        let occupancy = ladder.occupancy();
        assert_eq!(occupancy.iter().sum::<u64>(), 20);
        assert!(occupancy[3] > 0, "time was spent at Shed");
        let transitions = ladder.transitions();
        assert_eq!(transitions.len(), 3, "Normal→B1→B2→Shed");
        for w in transitions.windows(2) {
            assert_eq!(w[0].to, w[1].from, "one rung at a time, in order");
        }
    }

    #[test]
    fn on_session_evaluates_every_eval_every_sessions() {
        let ladder = BrownoutLadder::new(BrownoutConfig {
            eval_every: 4,
            ..cfg()
        });
        let slo = SloTracker::new(SloConfig::default());
        for _ in 0..12 {
            ladder.on_session(&slo);
        }
        assert_eq!(ladder.evals(), 3, "12 sessions / eval_every 4");
    }
}
