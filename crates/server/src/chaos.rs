//! Server-layer chaos harness: inject the faults the fault-tolerance
//! layer exists for, then measure what it did about them.
//!
//! Four injection axes, all deterministic:
//!
//! * **worker panics** — [`ChaosPlan::panic_requests`] names request
//!   ids whose session panics mid-run (inside the supervised region,
//!   so [`crate::supervision`] must capture it);
//! * **clock skew** — every `every`-th session on a worker rewinds the
//!   worker's shared session clock by `backwards_s` (the supervisor's
//!   deadline arithmetic must saturate, never hang);
//! * **mid-serve shard corruption** — [`corrupt_shard_record`] flips a
//!   payload byte inside an existing record (a CRC must catch it);
//!   [`tear_shard_tail`] truncates trailing bytes (a torn final write);
//! * **kill-restart** — [`kill_restart_cycle`] serves a prefix of a
//!   fleet, abandons the store mid-flush (simulated power loss), tears
//!   a shard tail, then recovers via [`crate::recover::ServeRegion`]
//!   and re-serves only what the journal says never completed.
//!
//! `fleet_bench --chaos` drives all four into `BENCH_fleet.json`; the
//! `chaos_fleet` test suite asserts the invariants (one injected panic
//! ⇒ exactly one `Crashed` outcome, bit-identical recovered
//! accounting).

use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use p2auth_obs::persist::{shard_file_name, HEADER_LEN};
use p2auth_obs::ShardedEventStore;

use crate::fleet::FleetScenario;
use crate::messages::{AuthResponse, ServerConfig, SessionVerdict};
use crate::recover::{truncate_torn_tails, ServeRegion};
use crate::scheduler::{serve_obs, ServeObs};

/// Deterministic clock-skew injection: every `every`-th session a
/// worker picks up has its shared clock rewound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSkew {
    /// Period, in sessions per worker (0 disables).
    pub every: u64,
    /// Seconds the clock jumps backwards (clamped at zero).
    pub backwards_s: f64,
}

/// A chaos injection plan, shared read-only by all workers of a serve
/// region via [`ServeObs::chaos`].
#[derive(Debug, Default)]
pub struct ChaosPlan {
    panic_requests: HashSet<u64>,
    clock_skew: Option<ClockSkew>,
    fired: AtomicU64,
}

impl ChaosPlan {
    /// A plan that panics the sessions of the given request ids.
    #[must_use]
    pub fn panics(ids: impl IntoIterator<Item = u64>) -> Self {
        Self {
            panic_requests: ids.into_iter().collect(),
            ..Self::default()
        }
    }

    /// Adds clock-skew injection to the plan.
    #[must_use]
    pub fn with_clock_skew(mut self, skew: ClockSkew) -> Self {
        self.clock_skew = Some(skew);
        self
    }

    /// Whether this request's session must panic (counted).
    pub(crate) fn should_panic(&self, request_id: u64) -> bool {
        if self.panic_requests.contains(&request_id) {
            self.fired.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// The configured clock skew, if any.
    pub(crate) fn skew(&self) -> Option<ClockSkew> {
        self.clock_skew
    }

    /// Panics actually injected so far.
    #[must_use]
    pub fn injected_panics(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

/// Truncates up to `bytes` trailing bytes from shard `shard_idx`
/// (never into the header): a torn final write. Returns the bytes
/// actually removed.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn tear_shard_tail(dir: &Path, shard_idx: usize, bytes: usize) -> std::io::Result<usize> {
    let path = dir.join(shard_file_name(shard_idx));
    let len = std::fs::metadata(&path)?.len();
    let body = len.saturating_sub(HEADER_LEN as u64);
    let cut = (bytes as u64).min(body);
    if cut > 0 {
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(len - cut)?;
    }
    Ok(usize::try_from(cut).unwrap_or(0))
}

/// Flips one byte inside the *first* record's payload of shard
/// `shard_idx` — mid-file corruption the CRC must catch. Returns
/// false (and leaves the file alone) if the shard has no records.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn corrupt_shard_record(dir: &Path, shard_idx: usize) -> std::io::Result<bool> {
    let path = dir.join(shard_file_name(shard_idx));
    let mut bytes = std::fs::read(&path)?;
    // Header, then `len | crc | payload`: flip the first payload byte.
    let target = HEADER_LEN + 8;
    if bytes.len() <= target {
        return Ok(false);
    }
    bytes[target] ^= 0xff;
    std::fs::write(&path, &bytes)?;
    Ok(true)
}

/// What one [`kill_restart_cycle`] observed.
#[derive(Debug)]
pub struct KillRestartReport {
    /// Requests served before the simulated crash.
    pub served_before: usize,
    /// Completed sessions the recovery found on disk.
    pub completed_recovered: u64,
    /// In-flight (admitted, never completed) sessions the journal
    /// surfaced.
    pub in_flight: usize,
    /// Interruption markers appended on restart.
    pub interrupted_journaled: usize,
    /// Torn bytes truncated before re-opening the store.
    pub torn_repaired: usize,
    /// Requests re-served after restart (everything the journal did
    /// not mark completed).
    pub served_after: usize,
    /// Responses from the post-restart region.
    pub responses_after: Vec<AuthResponse>,
    /// Digest of the recovered accounting ([`ServeRegion::accounting_digest`]).
    pub recovered_digest: u64,
    /// Digest of a *second* recovery over the final store — must equal
    /// re-deriving it, proving recovery is deterministic.
    pub final_digest: u64,
    /// Completed sessions in the final store (pre-crash + re-served).
    pub final_completed: u64,
    /// Wall-clock seconds spent in recovery (replay + repair + journal).
    pub recovery_wall_s: f64,
}

/// Runs a full crash/restart cycle against `dir`:
///
/// 1. serve the first `kill_after` requests of the scenario with intent
///    journaling into a fresh store (small flush interval, so a
///    buffered tail exists to lose);
/// 2. *crash*: abandon the store — buffered appends are lost, exactly
///    the documented power-loss model — and tear every shard's tail
///    (the loss bound is "at most the final record per shard");
/// 3. *restart*: recover the region from disk, repair torn tails,
///    re-open the store for append, journal the interruptions;
/// 4. re-serve every request the journal does not mark completed;
/// 5. recover once more and return both digests.
///
/// # Panics
///
/// Panics on store I/O failure (this is a test/bench harness, not a
/// serving path).
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn kill_restart_cycle(
    scenario: &FleetScenario,
    server: &ServerConfig,
    dir: &Path,
    kill_after: usize,
) -> KillRestartReport {
    let mut config = *server;
    config.journal_intents = true;
    let kill_after = kill_after.min(scenario.requests.len());

    // Phase 1: serve a prefix, then "lose power" mid-flush. The flush
    // interval is deliberately *odd*: each session appends an intent
    // then a completion to its shard, so an odd batch boundary can
    // fall between the two — abandoning the buffer then leaves an
    // intent on disk without its completion, which is exactly the
    // in-flight case warm restart exists for.
    let store = ShardedEventStore::create(dir, config.shard_count, 3).expect("chaos store create");
    let obs = ServeObs {
        persist: Some(&store),
        ..ServeObs::default()
    };
    serve_obs(&scenario.system, &scenario.store, &config, obs, |sub| {
        for req in scenario.requests.iter().take(kill_after).cloned() {
            let _ = sub.submit_blocking(req);
        }
    });
    store.abandon();
    // Tear every shard's tail — the documented loss bound is "at most
    // the final record per shard", so the cycle exercises exactly
    // that. A torn completion whose intent survives is an in-flight
    // session the recovery must surface.
    for shard_idx in 0..config.shard_count {
        tear_shard_tail(dir, shard_idx, 5).expect("tear shard tail");
    }

    // Phase 2: warm restart.
    let t0 = Instant::now();
    let region = ServeRegion::recover(dir).expect("recover region");
    let torn_repaired = truncate_torn_tails(dir).expect("repair torn tails");
    let store = ShardedEventStore::open_append(dir, 4).expect("re-open store");
    let interrupted_journaled = region
        .journal_interruptions(&store)
        .expect("journal interruptions");
    let recovery_wall_s = t0.elapsed().as_secs_f64();
    let recovered_digest = region.accounting_digest();
    let completed_recovered = region.completed.sessions;
    let in_flight = region.in_flight.len();

    // Phase 3: re-serve exactly what never completed.
    let remaining: Vec<_> = scenario
        .requests
        .iter()
        .filter(|r| !region.is_completed(r.request_id))
        .cloned()
        .collect();
    let served_after = remaining.len();
    let obs = ServeObs {
        persist: Some(&store),
        ..ServeObs::default()
    };
    let (report, shed) = serve_obs(&scenario.system, &scenario.store, &config, obs, |sub| {
        let mut shed = Vec::new();
        for req in remaining.iter().cloned() {
            if let Err((req, why)) = sub.submit_blocking(req) {
                shed.push(AuthResponse {
                    request_id: req.request_id,
                    user_id: req.user_id,
                    verdict: SessionVerdict::Shed(why),
                    latency_ns: 0,
                    worker: usize::MAX,
                });
            }
        }
        shed
    });
    let mut responses_after: Vec<AuthResponse> =
        report.sessions.into_iter().map(|r| r.response).collect();
    responses_after.extend(shed);
    store.flush().expect("final flush");
    drop(store);

    let final_region = ServeRegion::recover(dir).expect("final recover");
    KillRestartReport {
        served_before: kill_after,
        completed_recovered,
        in_flight,
        interrupted_journaled,
        torn_repaired,
        served_after,
        responses_after,
        recovered_digest,
        final_digest: final_region.accounting_digest(),
        final_completed: final_region.completed.sessions,
        recovery_wall_s,
    }
}
