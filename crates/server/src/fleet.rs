//! Fleet simulator: N virtual devices generating the server's arrival
//! and fault mix.
//!
//! Each device re-uses the chaos idiom from the device crate's session
//! suites: a recording is synthesized per session, degraded by a
//! rotating [`SensorFaultConfig::preset`] family, then carried over a
//! [`FaultyLink`] pair by the reliable-transfer protocol — so the
//! attempts a request carries have realistic coverage, gap and
//! keystroke-timing damage, all seeded and deterministic. Acquisition
//! is **pre-generated** (in parallel, via `p2auth-par`) so a serve
//! region measures scheduling and scoring, not signal synthesis.

use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, Recording};
use p2auth_device::clock::VirtualClock;
use p2auth_device::host::LinkQuality;
use p2auth_device::{
    transmit_reliable, FaultConfig, FaultyLink, LinkConfig, ReliableConfig, WearableDevice,
};
use p2auth_sim::{
    inject_sensor_faults, Population, PopulationConfig, SensorFaultConfig, SensorFaultKind,
    SessionConfig,
};

use crate::messages::{AuthRequest, AuthResponse, ServerConfig, SessionVerdict};
use crate::scheduler::{serve_obs, ServeObs, ServeReport};
use crate::store::ShardedProfileStore;

/// Shape of the simulated fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Virtual devices; device `d` authenticates as `user_id = d`.
    pub num_devices: usize,
    /// Sessions each device submits.
    pub sessions_per_device: usize,
    /// Distinct enrolled profiles; devices cycle over them (enrollment
    /// is the expensive part — the store still holds one interned
    /// arena per device id, which is what sharding distributes).
    pub enrolled_users: usize,
    /// Master seed for cohort synthesis and fault draws.
    pub seed: u64,
    /// Whether sessions run under the sensor + link fault mix.
    pub chaos: bool,
    /// Every `hang_every`-th session delivers nothing at all (watchdog
    /// path); 0 disables.
    pub hang_every: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            num_devices: 8,
            sessions_per_device: 4,
            enrolled_users: 2,
            seed: 814,
            chaos: true,
            hang_every: 0,
        }
    }
}

/// A built fleet: the system, the populated store, and every device's
/// pre-acquired requests in submission order.
#[derive(Debug)]
pub struct FleetScenario {
    /// The pipeline configuration shared by all sessions.
    pub system: P2Auth,
    /// Profile store with one interned arena per device id.
    pub store: ShardedProfileStore,
    /// All requests, in submission order.
    pub requests: Vec<AuthRequest>,
    /// The PIN every simulated user claims.
    pub pin: Pin,
}

/// The rotating fault families of the chaos arrival mix.
const FAULT_KINDS: [SensorFaultKind; 3] = [
    SensorFaultKind::Motion,
    SensorFaultKind::Saturation,
    SensorFaultKind::Dropout,
];

fn perfect_link() -> LinkQuality {
    LinkQuality {
        coverage: 1.0,
        expected_blocks: 1,
        received_blocks: 1,
        gap_blocks: 0,
    }
}

/// One acquisition under the fleet's fault mix (the device-crate chaos
/// idiom): sensor faults degrade what the ADC sampled, link faults
/// degrade what the host received; `None` is a transfer the recovery
/// layer could not complete.
fn acquire(
    rec: &Recording,
    chaos: bool,
    seed: u64,
    nonce: u64,
) -> Option<(Recording, LinkQuality)> {
    if !chaos {
        return Some((rec.clone(), perfect_link()));
    }
    let kind = FAULT_KINDS[(nonce % FAULT_KINDS.len() as u64) as usize];
    let preset = SensorFaultConfig::preset(kind, 0.4, seed);
    let (sampled, _stats) = inject_sensor_faults(rec, &preset, nonce);
    let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
    // The CLI `fault` defaults: lossy enough that some sessions lose
    // their transfer (and re-prompt or abort), light enough that the
    // fleet mostly scores — a serving bench, not a link post-mortem.
    let faults = FaultConfig {
        drop_rate: 0.02,
        corrupt_rate: 0.005,
        seed: seed ^ (nonce << 8),
        ..FaultConfig::default()
    };
    let mut data = FaultyLink::new(LinkConfig::default(), faults);
    let mut keys = FaultyLink::new(
        LinkConfig {
            seed: 0x4b,
            ..LinkConfig::default()
        },
        FaultConfig {
            seed: faults.seed ^ 0x1234,
            ..faults
        },
    );
    let (result, _stats) = transmit_reliable(
        &sampled,
        &device,
        &mut data,
        &mut keys,
        &ReliableConfig::default(),
    );
    result.ok()
}

/// Synthesizes the cohort, enrolls the profile pool, interns one arena
/// per device id, and pre-acquires every session's attempts.
///
/// Deterministic in `config`: same config, same requests bit-for-bit.
#[must_use]
pub fn build_fleet(config: &FleetConfig) -> FleetScenario {
    let _span = p2auth_obs::span!("server.fleet.build");
    let enrolled = config.enrolled_users.max(1);
    // A few extra identities supply the third-party enrollment pool.
    let pop = Population::generate(&PopulationConfig {
        num_users: enrolled + 3,
        seed: config.seed,
        ..Default::default()
    });
    let pin = Pin::new("1628").expect("static PIN is valid");
    let session = SessionConfig::default();
    let system = P2Auth::new(P2AuthConfig::fast());

    // One real enrollment per distinct user; devices share arenas by
    // value (each store entry interns its own copy under its own id).
    let arenas: Vec<_> = (0..enrolled)
        .map(|u| {
            let enroll: Vec<_> = (0..6)
                .map(|i| pop.record_entry(u, &pin, HandMode::OneHanded, &session, 40 + i))
                .collect();
            let third: Vec<_> = (0..12)
                .map(|i| {
                    pop.record_entry(
                        enrolled + (i as usize % 3),
                        &pin,
                        HandMode::OneHanded,
                        &session,
                        70 + i,
                    )
                })
                .collect();
            let profile = system
                .enroll(&pin, &enroll, &third)
                .expect("fleet enrollment");
            system.arena(&profile)
        })
        .collect();
    let store = ShardedProfileStore::new(16);
    for d in 0..config.num_devices {
        store.insert_arena(d as u64, arenas[d % enrolled].clone());
    }

    // Pre-acquire every session's attempts in parallel; the result is
    // order-preserving, so request order (and every fault draw) is
    // independent of worker count.
    let specs: Vec<(u64, u64)> = (0..config.num_devices as u64)
        .flat_map(|d| (0..config.sessions_per_device as u64).map(move |k| (d, k)))
        .collect();
    let chaos = config.chaos;
    let hang_every = config.hang_every;
    let seed = config.seed;
    let spd = config.sessions_per_device as u64;
    let requests = p2auth_par::par_map(&specs, |&(d, k)| {
        let global = d * spd + k;
        let user = (d as usize) % enrolled;
        let attempts = if hang_every != 0 && (global + 1) % hang_every as u64 == 0 {
            // A device that never completes collection: the watchdog
            // must end this session, not a worker hang.
            vec![None]
        } else {
            let rec = pop.record_entry(user, &pin, HandMode::OneHanded, &session, 5000 + global);
            let n_attempts = if chaos { 2 } else { 1 };
            (0..n_attempts)
                .map(|a| acquire(&rec, chaos, seed, global * 4 + a))
                .collect()
        };
        AuthRequest {
            request_id: global,
            user_id: d,
            claimed_pin: Some(pin.clone()),
            attempts,
        }
    });
    FleetScenario {
        system,
        store,
        requests,
        pin,
    }
}

/// Submits every request of the scenario through blocking admission
/// (FIFO backpressure) and returns the serve report plus the responses
/// of requests that were shed at submission (e.g. during shutdown).
pub fn run_fleet(
    scenario: &FleetScenario,
    server: &ServerConfig,
) -> (ServeReport, Vec<AuthResponse>) {
    run_fleet_obs(scenario, server, ServeObs::default())
}

/// [`run_fleet`] with observability sinks: optional sharded event-log
/// persistence and SLO tracking (see [`ServeObs`]).
pub fn run_fleet_obs(
    scenario: &FleetScenario,
    server: &ServerConfig,
    obs: ServeObs<'_>,
) -> (ServeReport, Vec<AuthResponse>) {
    serve_obs(
        &scenario.system,
        &scenario.store,
        server,
        obs,
        |submitter| {
            let mut shed = Vec::new();
            for req in scenario.requests.iter().cloned() {
                if let Err((req, why)) = submitter.submit_blocking(req) {
                    shed.push(AuthResponse {
                        request_id: req.request_id,
                        user_id: req.user_id,
                        verdict: SessionVerdict::Shed(why),
                        latency_ns: 0,
                        worker: usize::MAX,
                    });
                }
            }
            shed
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::ShedReason;
    use crate::scheduler::serve;

    fn tiny() -> FleetConfig {
        FleetConfig {
            num_devices: 3,
            sessions_per_device: 2,
            enrolled_users: 1,
            seed: 11,
            chaos: false,
            hang_every: 0,
        }
    }

    #[test]
    fn every_request_gets_exactly_one_response() {
        let scenario = build_fleet(&tiny());
        assert_eq!(scenario.requests.len(), 6);
        assert_eq!(scenario.store.len(), 3);
        let (report, shed) = run_fleet(
            &scenario,
            &ServerConfig {
                num_workers: 2,
                queue_capacity: 4,
                ..ServerConfig::default()
            },
        );
        assert!(shed.is_empty(), "blocking submission never sheds pre-close");
        assert_eq!(report.sessions.len(), 6, "one response per request");
        let mut ids: Vec<_> = report
            .sessions
            .iter()
            .map(|r| r.response.request_id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
        // Legitimate users on a clean link: sessions complete (and at
        // least some accept).
        assert!(report.sessions.iter().all(|r| !r.response.verdict.shed()));
        assert!(report
            .sessions
            .iter()
            .any(|r| r.response.verdict.accepted()));
        assert_eq!(report.ctx_leaks_repaired, 0);
    }

    #[test]
    fn unknown_user_sheds_typed() {
        let scenario = build_fleet(&tiny());
        let (report, _) = serve(
            &scenario.system,
            &scenario.store,
            &ServerConfig::default(),
            |submitter| {
                submitter
                    .submit_blocking(AuthRequest {
                        request_id: 99,
                        user_id: 4242, // never enrolled
                        claimed_pin: Some(scenario.pin.clone()),
                        attempts: vec![None],
                    })
                    .unwrap();
            },
        );
        assert_eq!(report.sessions.len(), 1);
        assert_eq!(
            report.sessions[0].response.verdict,
            SessionVerdict::Shed(ShedReason::UnknownUser)
        );
        assert!(
            report.sessions[0].log.is_empty(),
            "shed session logs no events"
        );
    }

    #[test]
    fn hang_sessions_end_by_watchdog_not_by_hanging() {
        let cfg = FleetConfig {
            hang_every: 2,
            ..tiny()
        };
        let scenario = build_fleet(&cfg);
        let (report, _) = run_fleet(&scenario, &ServerConfig::default());
        assert_eq!(report.sessions.len(), 6);
        let aborted = report
            .sessions
            .iter()
            .filter(|r| {
                matches!(
                    r.response.verdict,
                    SessionVerdict::Completed {
                        state: p2auth_device::SupervisorState::Abort,
                        ..
                    }
                )
            })
            .count();
        assert!(aborted >= 3, "every hang session must watchdog-abort");
    }

    #[test]
    fn fleet_build_is_deterministic() {
        let a = build_fleet(&tiny());
        let b = build_fleet(&tiny());
        assert_eq!(a.requests.len(), b.requests.len());
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.request_id, y.request_id);
            assert_eq!(x.user_id, y.user_id);
            assert_eq!(x.attempts.len(), y.attempts.len());
            for (ax, ay) in x.attempts.iter().zip(&y.attempts) {
                match (ax, ay) {
                    (Some((ra, qa)), Some((rb, qb))) => {
                        assert_eq!(ra, rb);
                        assert_eq!(qa, qb);
                    }
                    (None, None) => {}
                    _ => panic!("attempt presence diverged"),
                }
            }
        }
    }
}
