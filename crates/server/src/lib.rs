//! Fleet-scale authentication server.
//!
//! The paper's prototype authenticates one session on one PC. Deployed,
//! PIN entry on commodity wearables means thousands of concurrent
//! sessions against a store of millions of enrolled profiles — this
//! crate is that serving layer, built from the pieces the rest of the
//! workspace already pins down:
//!
//! * [`store`] — a **sharded** in-memory profile store; each entry
//!   interns a [`p2auth_core::ProfileArena`] once, and every session
//!   for that user shares it read-only (the arena's `Send + Sync`
//!   contract is asserted at compile time in `p2auth-core`),
//! * [`queue`] — bounded admission with **typed shedding**
//!   ([`ShedReason`]) and strict-FIFO backpressure release,
//! * [`scheduler`] — a worker pool multiplexing many
//!   [`p2auth_device::SessionSupervisor`] state machines; each worker
//!   recycles one supervisor (`reset()` between sessions), owns one
//!   [`p2auth_core::SessionScratch`], runs a shared monotonic clock
//!   across its sessions, and resets its span context at every task
//!   boundary,
//! * [`fleet`] — N virtual devices generating the arrival/fault mix
//!   (sensor-fault presets + faulty-link transfers, all seeded).
//!
//! The overload contract is the headline: every submitted request gets
//! exactly one [`AuthResponse`] — completed or typed-shed — and the
//! server never hangs a session. Message shapes live in [`messages`]
//! (`p2auth.server.v1`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod messages;
pub mod queue;
pub mod scheduler;
pub mod store;

pub use fleet::{build_fleet, run_fleet, run_fleet_obs, FleetConfig, FleetScenario};
pub use messages::{AuthRequest, AuthResponse, ServerConfig, SessionVerdict, ShedReason};
pub use queue::AdmissionQueue;
pub use scheduler::{serve, serve_obs, ServeObs, ServeReport, SessionRecord, Submitter};
pub use store::{ShardedProfileStore, StoredProfile};
