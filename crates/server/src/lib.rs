//! Fleet-scale authentication server.
//!
//! The paper's prototype authenticates one session on one PC. Deployed,
//! PIN entry on commodity wearables means thousands of concurrent
//! sessions against a store of millions of enrolled profiles — this
//! crate is that serving layer, built from the pieces the rest of the
//! workspace already pins down:
//!
//! * [`store`] — a **sharded** in-memory profile store; each entry
//!   interns a [`p2auth_core::ProfileArena`] once, and every session
//!   for that user shares it read-only (the arena's `Send + Sync`
//!   contract is asserted at compile time in `p2auth-core`),
//! * [`queue`] — bounded admission with **typed shedding**
//!   ([`ShedReason`]) and strict-FIFO backpressure release,
//! * [`scheduler`] — a worker pool multiplexing many
//!   [`p2auth_device::SessionSupervisor`] state machines; each worker
//!   recycles one supervisor (`reset()` between sessions), owns one
//!   [`p2auth_core::SessionScratch`], runs a shared monotonic clock
//!   across its sessions, and resets its span context at every task
//!   boundary,
//! * [`fleet`] — N virtual devices generating the arrival/fault mix
//!   (sensor-fault presets + faulty-link transfers, all seeded),
//! * the **fault-tolerance layer** — [`supervision`] (panic capture,
//!   in-place worker respawn, poison-profile quarantine), [`retry`]
//!   (deadline-aware backoff for transient failures), [`brownout`]
//!   (an SLO-burn-driven degradation ladder with hysteresis),
//!   [`recover`] (crash-safe warm restart from the persisted
//!   `P2SHARD` store), and [`chaos`] (the harness that injects the
//!   faults the layer exists for).
//!
//! The overload contract is the headline: every submitted request gets
//! exactly one [`AuthResponse`] — completed, typed-shed, or typed
//! [`SessionVerdict::Crashed`] — and the server never hangs a session.
//! Message shapes live in [`messages`] (`p2auth.server.v1`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brownout;
pub mod chaos;
pub mod fleet;
pub mod messages;
pub mod queue;
pub mod recover;
pub mod retry;
pub mod scheduler;
pub mod store;
pub mod supervision;

pub use brownout::{BrownoutConfig, BrownoutLadder, BrownoutLevel, LadderTransition};
pub use chaos::{kill_restart_cycle, ChaosPlan, ClockSkew, KillRestartReport};
pub use fleet::{build_fleet, run_fleet, run_fleet_obs, FleetConfig, FleetScenario};
pub use messages::{AuthRequest, AuthResponse, ServerConfig, SessionVerdict, ShedReason};
pub use queue::AdmissionQueue;
pub use recover::{InFlightSession, ServeRegion, SessionAccounting};
pub use retry::{RetryPolicy, TransientFailure};
pub use scheduler::{
    serve, serve_obs, ServeObs, ServeReport, SessionRecord, ShardNameTable, Submitter,
};
pub use store::{ShardedProfileStore, StoredProfile};
pub use supervision::{Supervision, SupervisionConfig};
