//! Message contracts of the fleet server (`p2auth.server.v1`).
//!
//! Every value that crosses the device → server or server → device
//! boundary is one of the types below, and each type documents its
//! direction, its invariants, and who is allowed to construct it —
//! the same contracts-first discipline the acquisition chain uses for
//! its wire frames ([`p2auth_device::frame`]).
//!
//! | message | direction | produced by |
//! |---|---|---|
//! | [`AuthRequest`] | device → server | fleet simulator / edge gateway |
//! | [`AuthResponse`] | server → device | scheduler worker (or admission) |
//! | [`ShedReason`] | server → device | admission control / store lookup |
//!
//! Contract invariants:
//!
//! * **Every submitted request produces exactly one [`AuthResponse`]**
//!   — admitted sessions complete with a [`SessionVerdict::Completed`],
//!   everything else is a typed [`SessionVerdict::Shed`]; the server
//!   never hangs a request and never drops one silently.
//! * `request_id` is caller-chosen and echoed verbatim; the server
//!   never interprets it.
//! * A shed request has **no side effects**: nothing is written to any
//!   event log, no supervisor runs, no counters besides the shed
//!   counters move on its behalf.

use p2auth_core::{Pin, Recording};
use p2auth_device::host::LinkQuality;
use p2auth_device::SupervisorState;

/// One authentication session as submitted by a device (device →
/// server).
///
/// The acquisition chain runs device-side: each element of `attempts`
/// is what one collection attempt delivered over the (possibly faulty)
/// link — `None` models a transfer the recovery layer never completed,
/// which the supervisor's watchdog must absorb. The supervisor's
/// re-prompt budget bounds how many elements are consumed.
#[derive(Debug, Clone)]
pub struct AuthRequest {
    /// Caller-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Profile key into the sharded store.
    pub user_id: u64,
    /// The PIN the user claims (`None` exercises the PIN-less path).
    pub claimed_pin: Option<Pin>,
    /// Per-collection-attempt acquisitions, in delivery order.
    pub attempts: Vec<Option<(Recording, LinkQuality)>>,
}

/// Why the server refused to run a session (server → device).
///
/// Shedding is an explicit, typed outcome — the overload contract is
/// "a fast no, never a hang".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// Admission queue at capacity and the caller declined to wait.
    QueueFull,
    /// The server is draining; no new sessions are admitted.
    Shutdown,
    /// No profile enrolled under the requested `user_id`.
    UnknownUser,
    /// The profile is quarantined after repeated worker crashes
    /// (poison-profile detection); operators must re-enroll it.
    Quarantined,
    /// The brownout ladder reached its bottom rung: the region is
    /// shedding load to protect its error budget.
    Brownout,
}

impl ShedReason {
    /// Stable machine-readable name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Shutdown => "shutdown",
            ShedReason::UnknownUser => "unknown_user",
            ShedReason::Quarantined => "quarantined",
            ShedReason::Brownout => "brownout",
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a submitted session ended (server → device).
#[derive(Debug, Clone, PartialEq)]
pub enum SessionVerdict {
    /// The session ran under a supervisor to a terminal state.
    Completed {
        /// Terminal supervisor state (`Accept`/`Reject`/`Abort`).
        state: SupervisorState,
        /// Collection attempts consumed (1 + re-prompts).
        attempts: u32,
        /// Whether the user was accepted.
        accepted: bool,
    },
    /// The session never ran; the reason says why.
    Shed(ShedReason),
    /// The session's worker panicked mid-run. The panic was captured by
    /// supervision ([`crate::supervision`]), the worker state was
    /// respawned, and the crash was event-logged and counted — a
    /// crashed session is an error, never an accept.
    Crashed {
        /// The captured panic message.
        reason: String,
    },
}

impl SessionVerdict {
    /// Whether the session ran and accepted the user.
    #[must_use]
    pub fn accepted(&self) -> bool {
        matches!(self, SessionVerdict::Completed { accepted: true, .. })
    }

    /// Whether the session was shed.
    #[must_use]
    pub fn shed(&self) -> bool {
        matches!(self, SessionVerdict::Shed(_))
    }

    /// Whether the session's worker panicked mid-run.
    #[must_use]
    pub fn crashed(&self) -> bool {
        matches!(self, SessionVerdict::Crashed { .. })
    }

    /// Stable machine-readable tag for accounting and recovery:
    /// `accept` / `reject` / `abort` for completed sessions,
    /// `crashed`, or `shed_<reason>`.
    #[must_use]
    pub fn tag(&self) -> String {
        match self {
            SessionVerdict::Completed { state, .. } => state.as_str().to_string(),
            SessionVerdict::Shed(reason) => format!("shed_{}", reason.as_str()),
            SessionVerdict::Crashed { .. } => "crashed".to_string(),
        }
    }
}

/// The server's single reply to one [`AuthRequest`] (server → device).
#[derive(Debug, Clone, PartialEq)]
pub struct AuthResponse {
    /// `AuthRequest::request_id`, echoed verbatim.
    pub request_id: u64,
    /// `AuthRequest::user_id`, echoed verbatim.
    pub user_id: u64,
    /// How the session ended.
    pub verdict: SessionVerdict,
    /// Wall-clock latency from worker pickup to verdict, in ns (0 for
    /// sessions shed at admission, which never reach a worker).
    pub latency_ns: u64,
    /// Index of the worker that ran the session (`usize::MAX` for
    /// sessions shed at admission).
    pub worker: usize,
}

/// Sizing and policy knobs of the fleet server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue.
    pub num_workers: usize,
    /// Admission queue capacity; beyond it, `try_submit` sheds.
    pub queue_capacity: usize,
    /// Shards in the profile store.
    pub shard_count: usize,
    /// Deadline/re-prompt policy every session runs under.
    pub supervisor: p2auth_device::SupervisorConfig,
    /// Worker supervision: panic capture and poison-profile
    /// quarantine. Defaults on — capturing a panic that never happens
    /// costs nothing.
    pub supervision: crate::supervision::SupervisionConfig,
    /// Per-session retry policy for transient failures. Defaults off
    /// (`max_retries = 0`) so existing serve regions are bit-identical.
    pub retry: crate::retry::RetryPolicy,
    /// Brownout degradation ladder. Defaults off.
    pub brownout: crate::brownout::BrownoutConfig,
    /// When true (and [`crate::scheduler::ServeObs::persist`] is set),
    /// each admitted session writes an intent record at worker pickup
    /// and tags its completion log with `phase=done` / `verdict=<tag>`
    /// meta, so [`crate::recover::ServeRegion::recover`] can rebuild
    /// in-flight session ids after a crash. Defaults off: it roughly
    /// doubles store appends, and plain observability persistence does
    /// not need it.
    pub journal_intents: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            num_workers: 4,
            queue_capacity: 64,
            shard_count: 16,
            supervisor: p2auth_device::SupervisorConfig::default(),
            supervision: crate::supervision::SupervisionConfig::default(),
            retry: crate::retry::RetryPolicy::default(),
            brownout: crate::brownout::BrownoutConfig::default(),
            journal_intents: false,
        }
    }
}
