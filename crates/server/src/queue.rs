//! Bounded admission queue with typed shedding and FIFO backpressure.
//!
//! The overload contract (`p2auth.server.v1`):
//!
//! * [`AdmissionQueue::try_submit`] never blocks: at capacity it hands
//!   the request straight back with [`ShedReason::QueueFull`] — a fast
//!   no, not a hang and not a silent drop;
//! * [`AdmissionQueue::submit_blocking`] applies backpressure: blocked
//!   producers hold **tickets** and are admitted strictly in arrival
//!   order as workers free capacity (condvar wakeup order is not
//!   FIFO, so fairness is enforced by ticket, not by wakeup);
//! * after [`AdmissionQueue::close`], every submission sheds with
//!   [`ShedReason::Shutdown`] and parked producers unblock — close is
//!   the graceful-drain signal, already-admitted requests still run.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::messages::{AuthRequest, ShedReason};

#[derive(Debug)]
struct Inner {
    queue: VecDeque<AuthRequest>,
    closed: bool,
    /// Next ticket to hand to a blocking producer.
    next_ticket: u64,
    /// Ticket currently allowed to enqueue; equal to `next_ticket` when
    /// no producer is parked.
    next_admit: u64,
}

/// The bounded FIFO between admission and the worker pool.
#[derive(Debug)]
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    /// Signalled when the queue gains an item or closes (workers wait).
    not_empty: Condvar,
    /// Signalled when capacity frees or tickets advance (producers wait).
    not_full: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// An open queue holding at most `capacity` requests (clamped ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
                next_ticket: 0,
                next_admit: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently admitted and waiting for a worker.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Non-blocking admission. Sheds with the request handed back when
    /// the queue is at capacity, producers are already parked ahead of
    /// us (no queue-jumping past backpressured peers), or the queue is
    /// closed.
    pub fn try_submit(&self, req: AuthRequest) -> Result<(), (AuthRequest, ShedReason)> {
        let mut g = self.lock();
        if g.closed {
            return Err((req, ShedReason::Shutdown));
        }
        if g.queue.len() >= self.capacity || g.next_admit != g.next_ticket {
            p2auth_obs::counter!("server.queue.shed_full").incr();
            return Err((req, ShedReason::QueueFull));
        }
        g.queue.push_back(req);
        p2auth_obs::gauge!("server.queue.depth").set(g.queue.len() as f64);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking admission: waits for capacity, keeping parked producers
    /// in strict arrival order. Sheds only on [`ShedReason::Shutdown`].
    pub fn submit_blocking(&self, req: AuthRequest) -> Result<(), (AuthRequest, ShedReason)> {
        let mut g = self.lock();
        let ticket = g.next_ticket;
        g.next_ticket += 1;
        loop {
            if g.closed {
                // Unblock successors: tickets ahead of a dead producer
                // must not park the rest of the line forever.
                g.next_admit = g.next_admit.max(ticket + 1);
                drop(g);
                self.not_full.notify_all();
                return Err((req, ShedReason::Shutdown));
            }
            if g.next_admit == ticket && g.queue.len() < self.capacity {
                g.next_admit = ticket + 1;
                g.queue.push_back(req);
                p2auth_obs::gauge!("server.queue.depth").set(g.queue.len() as f64);
                drop(g);
                self.not_empty.notify_one();
                self.not_full.notify_all();
                return Ok(());
            }
            p2auth_obs::counter!("server.queue.backpressure_waits").incr();
            g = self
                .not_full
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Worker side: the next admitted request, blocking while the queue
    /// is open. `None` once the queue is closed **and** drained — the
    /// worker's signal to exit.
    pub fn pop(&self) -> Option<AuthRequest> {
        let mut g = self.lock();
        loop {
            if let Some(req) = g.queue.pop_front() {
                p2auth_obs::gauge!("server.queue.depth").set(g.queue.len() as f64);
                drop(g);
                self.not_full.notify_all();
                return Some(req);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes admission (idempotent): future submissions shed with
    /// [`ShedReason::Shutdown`]; parked producers and idle workers wake.
    pub fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> AuthRequest {
        AuthRequest {
            request_id: id,
            user_id: id,
            claimed_pin: None,
            attempts: Vec::new(),
        }
    }

    #[test]
    fn try_submit_sheds_at_capacity_with_request_back() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_submit(req(1)).is_ok());
        assert!(q.try_submit(req(2)).is_ok());
        let (back, why) = q.try_submit(req(3)).unwrap_err();
        assert_eq!(why, ShedReason::QueueFull);
        assert_eq!(back.request_id, 3, "the shed request comes back intact");
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_sheds_with_shutdown_and_pop_drains() {
        let q = AdmissionQueue::new(4);
        q.try_submit(req(1)).unwrap();
        q.close();
        let (_, why) = q.try_submit(req(2)).unwrap_err();
        assert_eq!(why, ShedReason::Shutdown);
        // Already-admitted work still drains.
        assert_eq!(q.pop().map(|r| r.request_id), Some(1));
        assert_eq!(q.pop().map(|r| r.request_id), None);
    }

    #[test]
    fn backpressure_releases_in_fifo_order() {
        use std::sync::Arc;
        let q = Arc::new(AdmissionQueue::new(1));
        q.try_submit(req(0)).unwrap(); // fill to capacity
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for id in 1..=8_u64 {
                let q = Arc::clone(&q);
                handles.push(s.spawn(move || {
                    // Deterministic arrival order: producer `id` takes
                    // its ticket only once the previous producer has
                    // taken ticket `id - 2` (only this thread spins on
                    // this trigger value, so the handout cannot race).
                    while q.lock().next_ticket != id - 1 {
                        std::thread::yield_now();
                    }
                    q.submit_blocking(req(id)).unwrap();
                }));
            }
            // Wait until every producer holds a ticket, then drain:
            // item 0 plus the 8 backpressured producers, which must be
            // admitted strictly in ticket (arrival) order.
            while q.lock().next_ticket < 8 {
                std::thread::yield_now();
            }
            let mut order = Vec::new();
            for _ in 0..9 {
                order.push(q.pop().unwrap().request_id);
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(order, (0..=8).collect::<Vec<_>>(), "FIFO release broken");
        });
    }

    #[test]
    fn try_submit_does_not_jump_parked_producers() {
        use std::sync::Arc;
        let q = Arc::new(AdmissionQueue::new(1));
        q.try_submit(req(0)).unwrap();
        std::thread::scope(|s| {
            let q2 = Arc::clone(&q);
            let h = s.spawn(move || q2.submit_blocking(req(1)));
            // Wait until the producer is parked (ticket taken).
            while q.lock().next_ticket == 0 {
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            // A non-blocking submit now must shed, not steal the slot
            // the parked producer is first in line for.
            q.pop().unwrap();
            let res = q.try_submit(req(2));
            match res {
                Ok(()) => {
                    // Only legal if the parked producer already won the
                    // race and its item is in the queue ahead of us.
                    assert_eq!(q.pop().unwrap().request_id, 1);
                }
                Err((_, why)) => assert_eq!(why, ShedReason::QueueFull),
            }
            q.pop(); // drain whatever remains so the producer finishes
            h.join().unwrap().unwrap();
        });
    }

    #[test]
    fn close_unparks_every_blocked_producer() {
        use std::sync::Arc;
        let q = Arc::new(AdmissionQueue::new(1));
        q.try_submit(req(0)).unwrap();
        std::thread::scope(|s| {
            let handles: Vec<_> = (1..=4_u64)
                .map(|id| {
                    let q = Arc::clone(&q);
                    s.spawn(move || q.submit_blocking(req(id)))
                })
                .collect();
            while q.lock().next_ticket < 4 {
                std::thread::yield_now();
            }
            q.close();
            for h in handles {
                let (_, why) = h.join().unwrap().unwrap_err();
                assert_eq!(why, ShedReason::Shutdown, "close must unpark, not hang");
            }
        });
    }
}
