//! Crash-safe warm restart: rebuild serve accounting from the
//! persisted `P2SHARD` store.
//!
//! A fleet process that dies loses its in-memory [`crate::ServeReport`]
//! — but when the region ran with persistence (and
//! [`crate::ServerConfig::journal_intents`]), everything needed to
//! resume is already on disk:
//!
//! * an **intent record** per admitted session (`phase=admitted`
//!   meta, no events), appended at worker pickup, before the session
//!   runs;
//! * a **completion log** per finished session (`phase=done` +
//!   `verdict=<tag>` meta plus the full event trace).
//!
//! [`ServeRegion::recover`] replays the store shard by shard:
//! completions rebuild the accounting (sessions / accepts / rejects /
//! aborts / sheds / crashes), intents *without* a matching completion
//! are the in-flight sessions the crash interrupted, and the torn
//! final record per shard (the store's documented crash-loss bound) is
//! surfaced as `torn_bytes`. Recovery is deterministic — the same
//! shards always rebuild the same [`ServeRegion::accounting_digest`] —
//! and per-shard failures are isolated, the same blast-radius rule as
//! the reader underneath.
//!
//! Stores written *without* intent journaling still recover: verdicts
//! fall back to each log's `SessionEnd` event, and the in-flight set is
//! simply empty.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use p2auth_obs::events::Fnv64;
use p2auth_obs::persist::{read_store_dir, PersistError};
use p2auth_obs::{EventLog, SessionEvent, SessionSeeds, ShardedEventStore};

/// Completed-session tallies rebuilt from the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionAccounting {
    /// Completed sessions of any verdict (including sheds and crashes).
    pub sessions: u64,
    /// Sessions that accepted the user.
    pub accepts: u64,
    /// Sessions that rejected the user.
    pub rejects: u64,
    /// Sessions that aborted.
    pub aborts: u64,
    /// Sessions shed at a worker.
    pub sheds: u64,
    /// Sessions whose worker crashed.
    pub crashes: u64,
}

/// One session the crash interrupted: admitted (intent on disk) but
/// never completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlightSession {
    /// The interrupted request.
    pub request_id: u64,
    /// The profile it was authenticating.
    pub user_id: u64,
}

/// What [`ServeRegion::recover`] rebuilt from a store directory.
#[derive(Debug)]
pub struct ServeRegion {
    /// Tallies over every completed session found.
    pub completed: SessionAccounting,
    /// `request_id → verdict tag` for every completed session, sorted
    /// by id (a `BTreeMap`, so iteration — and the digest — is
    /// deterministic).
    pub completed_verdicts: BTreeMap<u64, String>,
    /// Sessions admitted but never completed, sorted by request id.
    pub in_flight: Vec<InFlightSession>,
    /// Interruption markers found (from a *previous* recovery's
    /// [`ServeRegion::journal_interruptions`]).
    pub prior_interruptions: u64,
    /// Torn trailing bytes dropped across all shards (the documented
    /// crash-loss bound: at most the final record per shard).
    pub torn_bytes: usize,
    /// Records that did not decode as `p2auth.events.v1` logs (skipped,
    /// counted — recovery never gives up on a whole shard for one bad
    /// payload).
    pub undecodable_records: u64,
    /// Shards that failed to read, with their typed errors; healthy
    /// siblings are still reflected in the tallies above.
    pub failed_shards: Vec<(PathBuf, PersistError)>,
    /// Total records scanned (intents + completions + markers).
    pub records_scanned: u64,
}

impl ServeRegion {
    /// Replays every shard under `dir` and rebuilds the region state.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] only when the directory itself cannot be
    /// listed; unreadable shards are isolated into
    /// [`ServeRegion::failed_shards`].
    pub fn recover(dir: &Path) -> Result<Self, PersistError> {
        let shards = read_store_dir(dir)?;
        let mut completed_verdicts: BTreeMap<u64, String> = BTreeMap::new();
        let mut intents: BTreeMap<u64, u64> = BTreeMap::new();
        let mut prior_interruptions = 0_u64;
        let mut torn_bytes = 0_usize;
        let mut undecodable_records = 0_u64;
        let mut failed_shards = Vec::new();
        let mut records_scanned = 0_u64;
        for (path, read) in shards {
            let read = match read {
                Ok(read) => read,
                Err(err) => {
                    failed_shards.push((path, err));
                    continue;
                }
            };
            torn_bytes += read.torn_bytes;
            for payload in &read.records {
                records_scanned += 1;
                let Ok(text) = std::str::from_utf8(payload) else {
                    undecodable_records += 1;
                    continue;
                };
                let Ok(log) = EventLog::decode(text) else {
                    undecodable_records += 1;
                    continue;
                };
                let Some(request_id) = log.meta_get("request_id").and_then(|v| v.parse().ok())
                else {
                    undecodable_records += 1;
                    continue;
                };
                let user_id: u64 = log
                    .meta_get("user_id")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                match log.meta_get("phase") {
                    Some("admitted") => {
                        intents.insert(request_id, user_id);
                    }
                    Some("interrupted") => {
                        prior_interruptions += 1;
                    }
                    _ => {
                        // A completion: verdict from meta, else derived
                        // from the event trace (stores written without
                        // intent journaling).
                        let verdict = log
                            .meta_get("verdict")
                            .map(str::to_string)
                            .unwrap_or_else(|| derive_verdict(&log));
                        completed_verdicts.insert(request_id, verdict);
                    }
                }
            }
        }
        let mut completed = SessionAccounting::default();
        for verdict in completed_verdicts.values() {
            completed.sessions += 1;
            match verdict.as_str() {
                "accept" => completed.accepts += 1,
                "reject" => completed.rejects += 1,
                "abort" => completed.aborts += 1,
                "crashed" => completed.crashes += 1,
                v if v.starts_with("shed") => completed.sheds += 1,
                _ => {}
            }
        }
        let in_flight: Vec<InFlightSession> = intents
            .into_iter()
            .filter(|(request_id, _)| !completed_verdicts.contains_key(request_id))
            .map(|(request_id, user_id)| InFlightSession {
                request_id,
                user_id,
            })
            .collect();
        Ok(Self {
            completed,
            completed_verdicts,
            in_flight,
            prior_interruptions,
            torn_bytes,
            undecodable_records,
            failed_shards,
            records_scanned,
        })
    }

    /// Whether `request_id` completed before the crash (a restart
    /// driver re-submits only the requests this returns `false` for).
    #[must_use]
    pub fn is_completed(&self, request_id: u64) -> bool {
        self.completed_verdicts.contains_key(&request_id)
    }

    /// FNV-64 over the sorted `(request_id, verdict)` pairs: the
    /// deterministic fingerprint of the recovered accounting. Two
    /// recoveries of the same shards — or a recovery and the live
    /// region that wrote them — agree bit-identically.
    #[must_use]
    pub fn accounting_digest(&self) -> u64 {
        let mut fnv = Fnv64::new();
        for (request_id, verdict) in &self.completed_verdicts {
            fnv.update_u64(*request_id);
            fnv.update_bytes(verdict.as_bytes());
        }
        fnv.finish()
    }

    /// Re-admits every interrupted session observably: appends one
    /// `phase=interrupted` marker log (with a `Fault` event) per
    /// in-flight session to the re-opened store, so the restart itself
    /// is on the record and replay-verifiable.
    ///
    /// # Errors
    ///
    /// Propagates the first append failure.
    pub fn journal_interruptions(&self, store: &ShardedEventStore) -> std::io::Result<usize> {
        for session in &self.in_flight {
            let mut log = EventLog::new(SessionSeeds::default());
            log.meta_push("request_id", session.request_id.to_string());
            log.meta_push("user_id", session.user_id.to_string());
            log.meta_push("phase", "interrupted");
            log.push(SessionEvent::Fault {
                kind: "interrupted".to_string(),
                detail: "re-admitted after warm restart".to_string(),
            });
            store.append(session.user_id, log.encode().as_bytes())?;
        }
        Ok(self.in_flight.len())
    }
}

/// Verdict tag for a completion log without `verdict` meta: the
/// `SessionEnd` state if present, `crashed` if the log carries a crash
/// fault, otherwise an empty log is a worker-side shed.
fn derive_verdict(log: &EventLog) -> String {
    for ev in log.events.iter().rev() {
        if let SessionEvent::SessionEnd { state, .. } = &ev.event {
            return state.clone();
        }
    }
    let crashed = log
        .events
        .iter()
        .any(|ev| matches!(&ev.event, SessionEvent::Fault { kind, .. } if kind == "crashed"));
    if crashed {
        "crashed".to_string()
    } else if log.is_empty() {
        "shed".to_string()
    } else {
        "unknown".to_string()
    }
}

/// Truncates each shard's torn trailing bytes in place, so the store
/// can be re-opened for append without burying the tear mid-file
/// (where it would corrupt the shard instead of being dropped).
/// Returns total bytes truncated.
///
/// # Errors
///
/// Propagates directory listing and truncation failures; unreadable
/// shards are skipped (recovery already isolated them).
pub fn truncate_torn_tails(dir: &Path) -> std::io::Result<usize> {
    let shards = read_store_dir(dir)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut truncated = 0_usize;
    for (path, read) in shards {
        let Ok(read) = read else { continue };
        if read.torn_bytes == 0 {
            continue;
        }
        let len = std::fs::metadata(&path)?.len();
        let keep = len.saturating_sub(read.torn_bytes as u64);
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(keep)?;
        truncated += read.torn_bytes;
    }
    Ok(truncated)
}
