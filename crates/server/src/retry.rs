//! Per-session retry with deadline-aware exponential backoff + jitter.
//!
//! Not every failed session is a hard reject. Two failure shapes are
//! *transient* — the paper's acquisition chain can simply be asked
//! again:
//!
//! * a session that ended in `Abort` (the link never delivered a
//!   usable acquisition before the watchdog fired), and
//! * a `Reject` whose only reason was `PoorSignal` after the re-prompt
//!   budget ran out (the sensor was noisy, not the user wrong).
//!
//! A hard `Reject` (wrong PIN, biometric mismatch) is **never**
//! retried: retrying an adversary hands them extra guesses.
//!
//! The backoff schedule reuses the ARQ idiom from the reliable-transfer
//! layer (`base * factor^attempt`, exponent capped) plus deterministic
//! jitter derived from `(request_id, retry_index)` via the same
//! splitmix64 finalizer the store uses for sharding — so two identical
//! serve regions back off identically, and replay stays bit-exact.
//! Retries are *deadline-aware*: a retry is attempted only if its
//! backoff still fits inside the session's wall-clock budget.

/// Retry policy, carried inside [`crate::ServerConfig`]. `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first try (0 disables retry — the default, so
    /// existing serve regions replay bit-identically).
    pub max_retries: u32,
    /// First backoff, seconds on the worker's session clock.
    pub backoff_base_s: f64,
    /// Multiplier per retry (exponent capped at 10, the ARQ idiom).
    pub backoff_factor: f64,
    /// Jitter as a fraction of the computed backoff: the actual wait is
    /// `backoff * (1 + jitter_frac * u)` with `u ∈ [0, 1)` drawn
    /// deterministically from `(request_id, retry_index)`.
    pub jitter_frac: f64,
    /// Total wall-clock budget for one session including all retries,
    /// seconds. A retry whose backoff would land past this budget is
    /// not attempted.
    pub session_deadline_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 0,
            backoff_base_s: 0.5,
            backoff_factor: 2.0,
            jitter_frac: 0.25,
            session_deadline_s: 120.0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `retry_index` (0-based) of
    /// `request_id`, in seconds: exponential with capped exponent plus
    /// deterministic jitter.
    #[must_use]
    pub fn backoff_s(&self, retry_index: u32, request_id: u64) -> f64 {
        let exp = i32::try_from(retry_index.min(10)).unwrap_or(10);
        let base = self.backoff_base_s * self.backoff_factor.powi(exp);
        base * (1.0 + self.jitter_frac * jitter_unit(request_id, retry_index))
    }

    /// Whether retry `retry_index` should run, given `elapsed_s`
    /// seconds of session wall clock already spent. Returns the
    /// backoff to apply, or `None` if the retry budget or the session
    /// deadline is exhausted.
    #[must_use]
    pub fn next_backoff_s(&self, retry_index: u32, request_id: u64, elapsed_s: f64) -> Option<f64> {
        if retry_index >= self.max_retries {
            return None;
        }
        let backoff = self.backoff_s(retry_index, request_id);
        if elapsed_s + backoff >= self.session_deadline_s {
            return None;
        }
        Some(backoff)
    }
}

/// Why a session outcome is considered transient (retryable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientFailure {
    /// The session aborted: the link never delivered a usable
    /// acquisition before the watchdog fired.
    Abort,
    /// The session rejected solely for poor signal quality after the
    /// re-prompt budget ran out.
    PoorSignal,
}

impl TransientFailure {
    /// Stable machine-readable name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TransientFailure::Abort => "abort",
            TransientFailure::PoorSignal => "poor_signal",
        }
    }
}

/// A uniform draw in `[0, 1)` from `(request_id, retry_index)` — the
/// splitmix64 finalizer, the store's sharding mix.
fn jitter_unit(request_id: u64, retry_index: u32) -> f64 {
    let mut z = request_id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(retry_index));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 53 mantissa bits → exact double in [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
            jitter_frac: 0.25,
            session_deadline_s: 100.0,
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_is_deterministic() {
        let p = policy();
        let b0 = p.backoff_s(0, 42);
        let b1 = p.backoff_s(1, 42);
        let b2 = p.backoff_s(2, 42);
        // Exponential envelope: base * 2^i <= b_i < base * 2^i * 1.25.
        for (i, b) in [b0, b1, b2].iter().enumerate() {
            let floor = 2.0_f64.powi(i32::try_from(i).unwrap());
            assert!(*b >= floor && *b < floor * 1.25, "b{i} = {b}");
        }
        assert_eq!(p.backoff_s(1, 42), b1, "same (id, try) → same backoff");
        assert_ne!(
            p.backoff_s(0, 42),
            p.backoff_s(0, 43),
            "different ids jitter differently"
        );
    }

    #[test]
    fn exponent_caps_at_ten_so_backoff_stays_finite() {
        let p = policy();
        let capped = p.backoff_s(10, 1);
        let beyond = p.backoff_s(40, 1);
        assert!(beyond.is_finite());
        // Same exponent, only jitter differs.
        assert!((beyond / capped - 1.0).abs() < 0.25);
    }

    #[test]
    fn deadline_awareness_refuses_late_retries() {
        let p = policy();
        assert!(p.next_backoff_s(0, 7, 0.0).is_some());
        assert!(
            p.next_backoff_s(0, 7, 99.9).is_none(),
            "no room left before the session deadline"
        );
        assert!(p.next_backoff_s(3, 7, 0.0).is_none(), "budget exhausted");
    }

    #[test]
    fn zero_max_retries_disables_retry() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 0, "default is off");
        assert!(p.next_backoff_s(0, 1, 0.0).is_none());
    }

    #[test]
    fn jitter_unit_is_in_range() {
        for id in 0..200_u64 {
            for retry in 0..4_u32 {
                let u = jitter_unit(id, retry);
                assert!((0.0..1.0).contains(&u), "u = {u}");
            }
        }
    }
}
