//! Session scheduler: a worker pool multiplexing many supervised
//! sessions over the admission queue.
//!
//! Each worker is long-lived and owns exactly the state the PR-8 bugfix
//! satellites made safe to pool:
//!
//! * **one recycled [`SessionSupervisor`]** — `reset()` between
//!   sessions clears the stale absolute deadline and restores the
//!   re-prompt budget (plus a second, zero-re-prompt supervisor used at
//!   brownout);
//! * **one [`SessionScratch`]** — scribble space, never carried state;
//! * **a shared monotonic clock** that keeps advancing across the
//!   sessions the worker runs (deadline arithmetic saturates instead of
//!   going non-finite);
//! * an **obs context reset** ([`p2auth_obs::reset_ctx`]) at every
//!   task-completion boundary, so back-to-back sessions on one worker
//!   produce disjoint span trees.
//!
//! The fault-tolerance layer wraps session execution (see
//! [`crate::supervision`], [`crate::retry`], [`crate::brownout`]): a
//! panicking session becomes a typed [`SessionVerdict::Crashed`] and
//! the worker's session state is respawned in place; transient
//! failures retry under a deadline-aware backoff; and an SLO-driven
//! brownout ladder degrades the pipeline one rung at a time before
//! shedding.
//!
//! Profiles come out of the [`ShardedProfileStore`] as `Arc`s; the
//! interned arena is shared read-only and all scoring goes through the
//! fused `decide_session_arena` hot path. Every admitted session also
//! writes a typed [`EventLog`] (`p2auth.events.v1`) — the same contract
//! the replay engine consumes — which is how the chaos suite proves
//! shed sessions never corrupt admitted sessions' logs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Instant;

use p2auth_core::{P2Auth, ProfileArena, SessionScratch};
use p2auth_device::supervisor::{SessionSupervisor, SupervisorEvent, SupervisorState};
use p2auth_device::SessionOutcome;
use p2auth_obs::{
    EventLog, MetricsLocal, SessionEvent, SessionSeeds, ShardedEventStore, SloTracker,
};

use crate::brownout::{BrownoutLadder, BrownoutLevel, LadderTransition};
use crate::chaos::ChaosPlan;
use crate::messages::{AuthRequest, AuthResponse, ServerConfig, SessionVerdict, ShedReason};
use crate::queue::AdmissionQueue;
use crate::retry::TransientFailure;
use crate::store::ShardedProfileStore;
use crate::supervision::{panic_message, Supervision};

/// Per-worker counters published (summed) into the global registry
/// when a serve region drains, so pre-existing handles keep observing
/// fleet totals. Dynamic names (per-shard breakdowns) intentionally
/// stay report-local: publishing them would intern an unbounded name
/// set in the leak-on-register global registry.
const PUBLISHED_COUNTERS: &[&str] = &[
    "server.persist.errors",
    "server.session.accepts",
    "server.session.aborts",
    "server.session.non_accepts",
    "server.session.crashes",
    "server.session.retries",
    "server.shed_unknown_user",
    "server.shed_quarantined",
    "server.shed_brownout",
    "server.worker.ctx_leaks",
    "server.worker.respawns",
    "server.worker.panics",
    "server.profile.quarantines",
    "server.brownout.pin_only",
    "server.brownout.transitions",
];

/// Per-worker histograms published (merged bucket-wise) into the
/// global registry when a serve region drains.
const PUBLISHED_HISTOGRAMS: &[&str] = &[
    "server.session.latency_ns",
    "server.session.latency.aborted_ns",
    "server.session.latency.shed_ns",
    "server.session.latency.crashed_ns",
];

/// One admitted session's full record: the response plus its event log.
#[derive(Debug)]
pub struct SessionRecord {
    /// The `p2auth.server.v1` response.
    pub response: AuthResponse,
    /// The session's `p2auth.events.v1` log.
    pub log: EventLog,
}

/// What one [`serve`] region processed.
#[derive(Debug)]
pub struct ServeReport {
    /// Admitted sessions, in completion order.
    pub sessions: Vec<SessionRecord>,
    /// Span-context leaks repaired at task boundaries (should be 0; a
    /// nonzero count means some session leaked an adopt guard).
    pub ctx_leaks_repaired: u64,
    /// Each worker's private metrics registry, indexed by worker id —
    /// the per-worker half of the snapshot/merge pattern.
    pub worker_metrics: Vec<MetricsLocal>,
    /// All worker registries merged (counters summed, histograms
    /// merged bucket-wise): outcome-labelled latency histograms
    /// (`server.session.latency_ns` / `.shed_ns` / `.aborted_ns` /
    /// `.crashed_ns`), session counters, and per-shard breakdowns
    /// (`server.shard.NN.*`).
    pub metrics: MetricsLocal,
    /// Worker threads that died to an *uncaptured* panic (possible
    /// only with `supervision.catch_panics = false`). The region still
    /// drains and reports, but each dead worker's in-hand session is
    /// lost and its capacity is gone for the rest of the region.
    pub worker_panics: u64,
    /// Brownout-ladder moves, in order (empty when the ladder is off).
    pub ladder_transitions: Vec<LadderTransition>,
    /// Ladder evaluations spent at each rung, indexed by
    /// [`BrownoutLevel::rung`] (all zeros when the ladder is off).
    pub ladder_occupancy: [u64; 4],
}

/// Observability and chaos hooks for one serve region, passed
/// alongside the (`Copy`) [`ServerConfig`]: all optional and default
/// to off, so [`serve`] costs nothing extra.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeObs<'a> {
    /// When set, every admitted session's event log is durably
    /// appended to this sharded store (keyed by user id — the same
    /// splitmix64 routing as the profile store).
    pub persist: Option<&'a ShardedEventStore>,
    /// When set, every admitted session feeds one `(latency, error?)`
    /// sample to this SLO tracker (error = shed, aborted or crashed) —
    /// and, when `config.brownout.enabled`, drives the brownout
    /// ladder.
    pub slo: Option<&'a SloTracker>,
    /// When set, the chaos plan injects worker panics and clock skew
    /// into this region (test/bench harness — see [`crate::chaos`]).
    pub chaos: Option<&'a ChaosPlan>,
}

/// Submission handle passed to the driver closure of [`serve`].
///
/// `Sync`: a fleet driver may fan submissions out over its own threads.
#[derive(Debug, Clone, Copy)]
pub struct Submitter<'a> {
    queue: &'a AdmissionQueue,
}

impl Submitter<'_> {
    /// Non-blocking admission; sheds (request handed back) at capacity
    /// or after shutdown. See [`AdmissionQueue::try_submit`].
    pub fn try_submit(&self, req: AuthRequest) -> Result<(), (AuthRequest, ShedReason)> {
        self.queue.try_submit(req)
    }

    /// Blocking admission with FIFO backpressure. See
    /// [`AdmissionQueue::submit_blocking`].
    pub fn submit_blocking(&self, req: AuthRequest) -> Result<(), (AuthRequest, ShedReason)> {
        self.queue.submit_blocking(req)
    }

    /// Requests admitted and waiting for a worker.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.queue.depth()
    }
}

/// Precomputed per-shard metric names. The worker hot loop used to
/// `format!` four `server.shard.NN.*` names per session; the table is
/// built once per serve region so steady-state sessions allocate
/// nothing for metric names.
#[derive(Debug)]
pub struct ShardNameTable {
    entries: Vec<ShardNames>,
}

/// The four per-shard metric names of one shard.
#[derive(Debug)]
pub struct ShardNames {
    /// `server.shard.NN.sheds`
    pub sheds: String,
    /// `server.shard.NN.accepts`
    pub accepts: String,
    /// `server.shard.NN.sessions`
    pub sessions: String,
    /// `server.shard.NN.latency_ns`
    pub latency_ns: String,
}

impl ShardNameTable {
    /// Builds the table for `shard_count` shards (at least one).
    #[must_use]
    pub fn new(shard_count: usize) -> Self {
        let entries = (0..shard_count.max(1))
            .map(|shard| ShardNames {
                sheds: format!("server.shard.{shard:02}.sheds"),
                accepts: format!("server.shard.{shard:02}.accepts"),
                sessions: format!("server.shard.{shard:02}.sessions"),
                latency_ns: format!("server.shard.{shard:02}.latency_ns"),
            })
            .collect();
        Self { entries }
    }

    /// The names of `shard` (modulo the table size, so a stale index
    /// can never panic the hot loop).
    #[must_use]
    pub fn get(&self, shard: usize) -> &ShardNames {
        &self.entries[shard % self.entries.len()]
    }

    /// Shards in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never — `new` clamps to one shard).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Everything a worker borrows from its serve region, bundled so the
/// spawn site stays readable.
struct WorkerCtx<'a> {
    system: &'a P2Auth,
    store: &'a ShardedProfileStore,
    config: &'a ServerConfig,
    obs: ServeObs<'a>,
    names: &'a ShardNameTable,
    supervision: &'a Supervision,
    ladder: Option<&'a BrownoutLadder>,
}

/// Runs a scoped serve region: spawns `config.num_workers` workers,
/// hands the driver a [`Submitter`], and on driver return closes
/// admission, drains the queue gracefully (admitted sessions still
/// run; new submissions shed with [`ShedReason::Shutdown`]) and joins
/// every worker. Returns the report plus the driver's own result.
///
/// The region cannot hang: workers exit when the closed queue is empty,
/// the queue unparks every backpressured producer on close, and each
/// session's supervisor carries finite deadlines.
pub fn serve<T>(
    system: &P2Auth,
    store: &ShardedProfileStore,
    config: &ServerConfig,
    driver: impl FnOnce(Submitter<'_>) -> T,
) -> (ServeReport, T) {
    serve_obs(system, store, config, ServeObs::default(), driver)
}

/// [`serve`] with observability sinks: optional durable event-log
/// persistence and SLO tracking (see [`ServeObs`]). Each worker
/// records into its own [`MetricsLocal`] — no shared atomics on the
/// session hot path — and the locals are merged into
/// [`ServeReport::metrics`] when the region drains, with the known
/// fleet-total names also published into the global registry.
///
/// A worker that panics *outside* the supervised session region (or
/// with `supervision.catch_panics = false`) no longer aborts the
/// region: its panic is captured at join, counted in
/// [`ServeReport::worker_panics`], and the remaining workers' metrics
/// still merge and publish.
pub fn serve_obs<T>(
    system: &P2Auth,
    store: &ShardedProfileStore,
    config: &ServerConfig,
    obs: ServeObs<'_>,
    driver: impl FnOnce(Submitter<'_>) -> T,
) -> (ServeReport, T) {
    let queue = AdmissionQueue::new(config.queue_capacity);
    let (tx, rx) = mpsc::channel::<SessionRecord>();
    let num_workers = config.num_workers.max(1);
    p2auth_obs::gauge!("server.workers").set(num_workers as f64);
    let names = ShardNameTable::new(config.shard_count);
    let supervision = Supervision::new();
    let ladder = config
        .brownout
        .enabled
        .then(|| BrownoutLadder::new(config.brownout));
    let ctx = WorkerCtx {
        system,
        store,
        config,
        obs,
        names: &names,
        supervision: &supervision,
        ladder: ladder.as_ref(),
    };
    let (driver_out, worker_metrics, worker_panics) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..num_workers)
            .map(|worker_idx| {
                let queue = &queue;
                let tx = tx.clone();
                let ctx = &ctx;
                s.spawn(move || worker_loop(worker_idx, ctx, queue, &tx))
            })
            .collect();
        drop(tx);
        let out = driver(Submitter { queue: &queue });
        // Graceful drain: no new admissions, queued work still runs.
        queue.close();
        let mut locals = Vec::with_capacity(num_workers);
        let mut panics = 0_u64;
        for h in handles {
            // A dead worker must not kill the region: count it, keep
            // the survivors' metrics, and keep draining.
            match h.join() {
                Ok(local) => locals.push(local),
                Err(_) => panics += 1,
            }
        }
        (out, locals, panics)
    });
    let sessions: Vec<SessionRecord> = rx.into_iter().collect();
    let ctx_leaks_repaired = sessions
        .iter()
        .filter(|r| r.log.meta_get("ctx_leak").is_some())
        .count() as u64;
    let mut metrics = MetricsLocal::new();
    for local in &worker_metrics {
        metrics.merge(local);
    }
    if worker_panics > 0 {
        metrics.add("server.worker.panics", worker_panics);
    }
    let ladder_transitions = ladder
        .as_ref()
        .map(BrownoutLadder::transitions)
        .unwrap_or_default();
    let ladder_occupancy = ladder
        .as_ref()
        .map(BrownoutLadder::occupancy)
        .unwrap_or_default();
    if !ladder_transitions.is_empty() {
        metrics.add(
            "server.brownout.transitions",
            ladder_transitions.len() as u64,
        );
    }
    publish_fleet_totals(&metrics);
    (
        ServeReport {
            sessions,
            ctx_leaks_repaired,
            worker_metrics,
            metrics,
            worker_panics,
            ladder_transitions,
            ladder_occupancy,
        },
        driver_out,
    )
}

/// Publishes the merged per-worker registries into the global registry
/// — only the fixed fleet-total name set, so repeated serve regions
/// never grow the interned name table.
fn publish_fleet_totals(merged: &MetricsLocal) {
    for &name in PUBLISHED_COUNTERS {
        let v = merged.counter(name);
        if v > 0 {
            p2auth_obs::metrics::counter_handle(name).add(v);
        }
    }
    for &name in PUBLISHED_HISTOGRAMS {
        if let Some(h) = merged.histogram(name) {
            p2auth_obs::metrics::histogram_handle(name).merge_from(h);
        }
    }
}

fn worker_loop(
    worker_idx: usize,
    ctx: &WorkerCtx<'_>,
    queue: &AdmissionQueue,
    tx: &mpsc::Sender<SessionRecord>,
) -> MetricsLocal {
    let mut scratch = SessionScratch::new();
    let mut sup = SessionSupervisor::new(ctx.config.supervisor);
    // The brownout supervisor: same deadlines, zero re-prompt budget.
    let mut sup_brownout = SessionSupervisor::new(brownout_supervisor(ctx.config));
    // The worker's monotonic session clock: shared by every session
    // this worker runs, never rewound — the deployment scenario the
    // supervisor's deadline fixes exist for. Chaos clock-skew is the
    // deliberate exception, clamped at zero.
    let mut clock_s = 0.0_f64;
    // The worker's private registry: plain integers, no contention.
    let mut local = MetricsLocal::new();
    let mut session_idx = 0_u64;
    while let Some(req) = queue.pop() {
        let t0 = Instant::now();
        let mut log = EventLog::new(SessionSeeds::default());
        log.meta_push("request_id", req.request_id.to_string());
        log.meta_push("user_id", req.user_id.to_string());
        log.meta_push("worker", worker_idx.to_string());
        session_idx += 1;
        if let Some(skew) = ctx.obs.chaos.and_then(ChaosPlan::skew) {
            if skew.every > 0 && session_idx % skew.every == 0 {
                clock_s = (clock_s - skew.backwards_s).max(0.0);
                local.incr("server.chaos.clock_skews");
                log.push(SessionEvent::Fault {
                    kind: "clock_skew".to_string(),
                    detail: format!("worker clock rewound {:.3}s", skew.backwards_s),
                });
            }
        }
        // One relaxed load (plus a periodic SLO evaluation) per
        // session; Normal when the ladder is off.
        let level = match (ctx.ladder, ctx.obs.slo) {
            (Some(ladder), Some(slo)) => ladder.on_session(slo),
            (Some(ladder), None) => ladder.level(),
            _ => BrownoutLevel::Normal,
        };
        let verdict = {
            let _span = p2auth_obs::span!("server.session");
            if ctx.supervision.is_quarantined(req.user_id) {
                local.incr("server.shed_quarantined");
                SessionVerdict::Shed(ShedReason::Quarantined)
            } else if level == BrownoutLevel::Shed {
                local.incr("server.shed_brownout");
                SessionVerdict::Shed(ShedReason::Brownout)
            } else {
                match ctx.store.get(req.user_id) {
                    None => {
                        local.incr("server.shed_unknown_user");
                        SessionVerdict::Shed(ShedReason::UnknownUser)
                    }
                    Some(entry) => {
                        // Intent journal: the crash-safe restart's
                        // in-flight marker, written before the session
                        // runs (see `crate::recover`).
                        if ctx.config.journal_intents {
                            if let Some(persist) = ctx.obs.persist {
                                let mut intent = EventLog::new(SessionSeeds::default());
                                intent.meta_push("request_id", req.request_id.to_string());
                                intent.meta_push("user_id", req.user_id.to_string());
                                intent.meta_push("phase", "admitted");
                                if persist
                                    .append(req.user_id, intent.encode().as_bytes())
                                    .is_err()
                                {
                                    local.incr("server.persist.errors");
                                }
                            }
                        }
                        run_supervised_session(
                            ctx,
                            &entry.arena,
                            &mut scratch,
                            &mut sup,
                            &mut sup_brownout,
                            &mut clock_s,
                            &req,
                            &mut log,
                            level,
                            &mut local,
                        )
                    }
                }
            }
        };
        // Task-completion boundary (the session span is closed): a
        // context leaked by this session must not parent the next one.
        if p2auth_obs::reset_ctx() {
            local.incr("server.worker.ctx_leaks");
            log.meta_push("ctx_leak", "repaired");
        }
        let latency_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Outcome-labelled latency: completed, shed, aborted and
        // crashed sessions go to separate histograms, so the
        // completed-auth latency story is not diluted (and sheds don't
        // vanish).
        let shard = p2auth_obs::persist::shard_of(req.user_id, ctx.config.shard_count);
        let names = ctx.names.get(shard);
        let mut error = false;
        match &verdict {
            SessionVerdict::Shed(_) => {
                error = true;
                local.record("server.session.latency.shed_ns", latency_ns);
                local.incr(&names.sheds);
            }
            SessionVerdict::Crashed { .. } => {
                // The crash counters moved on the crash path itself.
                error = true;
                local.record("server.session.latency.crashed_ns", latency_ns);
            }
            SessionVerdict::Completed {
                state: SupervisorState::Abort,
                ..
            } => {
                error = true;
                local.incr("server.session.aborts");
                local.incr("server.session.non_accepts");
                local.record("server.session.latency.aborted_ns", latency_ns);
            }
            SessionVerdict::Completed { accepted, .. } => {
                local.incr(if *accepted {
                    "server.session.accepts"
                } else {
                    "server.session.non_accepts"
                });
                if *accepted {
                    local.incr(&names.accepts);
                }
                local.record("server.session.latency_ns", latency_ns);
            }
        }
        // Brownout-1 and above: per-shard breakdowns are the optional
        // obs work the ladder skips first.
        if level < BrownoutLevel::Brownout1 {
            local.incr(&names.sessions);
            local.record(&names.latency_ns, latency_ns);
        }
        if let Some(slo) = ctx.obs.slo {
            slo.record(latency_ns, error);
        }
        if let Some(persist) = ctx.obs.persist {
            if ctx.config.journal_intents {
                log.meta_push("phase", "done");
                log.meta_push("verdict", verdict.tag());
            }
            if persist
                .append(req.user_id, log.encode().as_bytes())
                .is_err()
            {
                // Persistence is best-effort on the hot path: a full
                // disk must degrade observability, not availability.
                local.incr("server.persist.errors");
            }
        }
        let record = SessionRecord {
            response: AuthResponse {
                request_id: req.request_id,
                user_id: req.user_id,
                verdict,
                latency_ns,
                worker: worker_idx,
            },
            log,
        };
        if tx.send(record).is_err() {
            // Receiver gone: the serve region is being torn down.
            return local;
        }
    }
    local
}

/// The supervisor policy used at Brownout-1 and above: identical
/// deadlines, but zero re-prompts — the cheapest way to shorten
/// sessions without changing their decision semantics.
fn brownout_supervisor(config: &ServerConfig) -> p2auth_device::SupervisorConfig {
    p2auth_device::SupervisorConfig {
        max_reprompts: 0,
        ..config.supervisor
    }
}

/// Runs one admitted session under the full fault-tolerance stack:
/// brownout tiering, panic capture (+ quarantine bookkeeping and
/// in-place worker-state respawn), and deadline-aware retry of
/// transient failures.
#[allow(clippy::too_many_arguments)]
fn run_supervised_session(
    ctx: &WorkerCtx<'_>,
    arena: &ProfileArena,
    scratch: &mut SessionScratch,
    sup: &mut SessionSupervisor,
    sup_brownout: &mut SessionSupervisor,
    clock_s: &mut f64,
    req: &AuthRequest,
    log: &mut EventLog,
    level: BrownoutLevel,
    local: &mut MetricsLocal,
) -> SessionVerdict {
    let policy = ctx.config.retry;
    let start_s = *clock_s;
    let mut retry_index = 0_u32;
    loop {
        // Brownout-2: the paper's PIN-only fallback, served first for
        // attempts whose link coverage clears the gate.
        if level >= BrownoutLevel::Brownout2 {
            if let Some(verdict) = pin_only_tier(ctx, arena, clock_s, req, log, local) {
                return verdict;
            }
        }
        let run = {
            let active = if level >= BrownoutLevel::Brownout1 {
                &mut *sup_brownout
            } else {
                &mut *sup
            };
            active.reset();
            if ctx.config.supervision.catch_panics {
                catch_unwind(AssertUnwindSafe(|| {
                    run_session(
                        ctx.system,
                        arena,
                        scratch,
                        active,
                        clock_s,
                        req,
                        log,
                        ctx.obs.chaos,
                    )
                }))
            } else {
                Ok(run_session(
                    ctx.system,
                    arena,
                    scratch,
                    active,
                    clock_s,
                    req,
                    log,
                    ctx.obs.chaos,
                ))
            }
        };
        match run {
            Ok((verdict, transient)) => {
                if let Some(kind) = transient {
                    if let Some(backoff) =
                        policy.next_backoff_s(retry_index, req.request_id, *clock_s - start_s)
                    {
                        retry_index += 1;
                        *clock_s += backoff;
                        local.incr("server.session.retries");
                        log.push(SessionEvent::Fault {
                            kind: "retry".to_string(),
                            detail: format!(
                                "{} retry {retry_index} after {backoff:.3}s backoff",
                                kind.as_str()
                            ),
                        });
                        continue;
                    }
                }
                return verdict;
            }
            Err(payload) => {
                // The worker survives its session's panic: log it,
                // count it, rebuild the session state in place
                // (supervisors and scratch may be mid-transition), and
                // quarantine the profile if it keeps doing this.
                let reason = panic_message(payload.as_ref());
                *scratch = SessionScratch::new();
                *sup = SessionSupervisor::new(ctx.config.supervisor);
                *sup_brownout = SessionSupervisor::new(brownout_supervisor(ctx.config));
                local.incr("server.session.crashes");
                local.incr("server.worker.respawns");
                log.push(SessionEvent::Fault {
                    kind: "crashed".to_string(),
                    detail: reason.clone(),
                });
                let crash = ctx
                    .supervision
                    .record_crash(req.user_id, ctx.config.supervision.quarantine_after);
                if crash.quarantined_now {
                    local.incr("server.profile.quarantines");
                    log.push(SessionEvent::Fault {
                        kind: "quarantined".to_string(),
                        detail: format!("profile quarantined after {} crashes", crash.crashes),
                    });
                }
                return SessionVerdict::Crashed { reason };
            }
        }
    }
}

/// The Brownout-2 fast tier: PIN-only (`authenticate_degraded_arena`)
/// against the first delivered attempt, gated on link coverage so a
/// damaged acquisition still takes the full pipeline (the degraded
/// fallback must not mask a poor-signal reject). Returns `None` to
/// fall through.
fn pin_only_tier(
    ctx: &WorkerCtx<'_>,
    arena: &ProfileArena,
    clock_s: &mut f64,
    req: &AuthRequest,
    log: &mut EventLog,
    local: &mut MetricsLocal,
) -> Option<SessionVerdict> {
    let (recording, quality) = req.attempts.iter().flatten().next()?;
    if quality.coverage < ctx.config.brownout.pin_only_min_coverage {
        return None;
    }
    let decision = ctx
        .system
        .authenticate_degraded_arena(arena, req.claimed_pin.as_ref(), recording)
        .ok()?;
    *clock_s += 1.0;
    local.incr("server.brownout.pin_only");
    log.push(SessionEvent::Fault {
        kind: "brownout".to_string(),
        detail: format!("pin-only tier at coverage {:.3}", quality.coverage),
    });
    log.push(SessionEvent::Decision {
        attempt: 0,
        kind: "brownout_pin_only".to_string(),
        accepted: decision.accepted,
        case: format!("{:?}", decision.case),
        reason: decision.reason.map(|r| r.as_str().to_string()),
        score: decision.score,
        coverage: Some(quality.coverage),
        gap_blocks: Some(quality.gap_blocks as u64),
    });
    let state = if decision.accepted {
        SupervisorState::Accept
    } else {
        SupervisorState::Reject
    };
    log.push(SessionEvent::SessionEnd {
        state: state.as_str().to_string(),
        attempts: 1,
        accepted: decision.accepted,
    });
    Some(SessionVerdict::Completed {
        state,
        attempts: 1,
        accepted: decision.accepted,
    })
}

/// Drives one session's supervisor from its pre-acquired attempts on
/// the worker's shared clock. Identical policy to
/// [`p2auth_device::run_supervised`], but against the store's interned
/// arena, a recycled supervisor, and a clock that does not restart at
/// zero. Exhausted or `None` attempts advance time past the live
/// deadline, so the watchdog — never a hang — ends the session.
///
/// Returns the verdict plus its transient-failure classification
/// (`Abort`, or a reject whose only reason was poor signal) for the
/// retry layer.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_session(
    system: &P2Auth,
    arena: &ProfileArena,
    scratch: &mut SessionScratch,
    sup: &mut SessionSupervisor,
    now: &mut f64,
    req: &AuthRequest,
    log: &mut EventLog,
    chaos: Option<&ChaosPlan>,
) -> (SessionVerdict, Option<TransientFailure>) {
    if let Some(plan) = chaos {
        if plan.should_panic(req.request_id) {
            panic!("chaos: injected panic in request {}", req.request_id);
        }
    }
    macro_rules! step {
        ($event:expr, $now:expr) => {{
            let event = $event;
            let from = sup.state();
            let to = sup.step(event, $now);
            if from == to {
                log.push(SessionEvent::DeadlineTick {
                    state: from.as_str().to_string(),
                    now_s: $now,
                    deadline_s: sup.deadline_s(),
                });
            } else {
                log.push(SessionEvent::Transition {
                    from: from.as_str().to_string(),
                    to: to.as_str().to_string(),
                    event: event.name().to_string(),
                    now_s: $now,
                });
            }
            to
        }};
    }
    step!(SupervisorEvent::Start, *now);
    let mut deliveries = req.attempts.iter();
    let mut last_outcome: Option<SessionOutcome> = None;
    while !sup.state().is_terminal() {
        let attempt_no = sup.reprompts_used();
        match deliveries.next() {
            None | Some(None) => {
                // Nothing (more) was delivered: let time run out.
                let deadline = sup.deadline_s().unwrap_or(*now);
                *now = if deadline >= f64::MAX {
                    deadline
                } else {
                    deadline + 1e-3
                };
                step!(SupervisorEvent::Tick, *now);
            }
            Some(Some((recording, quality))) => {
                *now += 2.0;
                step!(SupervisorEvent::CollectionComplete, *now);
                *now += 0.5;
                let assessment = system.assess_quality_arena(arena, recording);
                let assess_event = match &assessment {
                    Ok(q) => {
                        log.push(SessionEvent::Assessment {
                            attempt: attempt_no,
                            detected: q.detected as u32,
                            usable: q.usable as u32,
                            mean_sqi: q.mean_sqi,
                        });
                        let usable = if system.config().sqi_gating {
                            q.usable
                        } else {
                            q.detected
                        };
                        SupervisorEvent::AssessmentReady {
                            usable,
                            detected: q.detected,
                            mean_sqi: q.mean_sqi,
                        }
                    }
                    Err(_) => SupervisorEvent::AssessmentFailed,
                };
                step!(assess_event, *now);
                if sup.state() == SupervisorState::Deciding {
                    *now += 0.5;
                    let outcome = p2auth_device::decide_session_arena(
                        system,
                        arena,
                        scratch,
                        req.claimed_pin.as_ref(),
                        recording,
                        *quality,
                    );
                    log.push(decision_event(attempt_no, &outcome));
                    let event = match &outcome {
                        SessionOutcome::Abort { .. } => SupervisorEvent::DecisionAbort,
                        other => match other.decision() {
                            Some(d) if d.accepted => SupervisorEvent::DecisionAccept,
                            Some(d) => SupervisorEvent::DecisionReject {
                                poor_signal: d.reason
                                    == Some(p2auth_core::RejectReason::PoorSignal),
                            },
                            None => SupervisorEvent::DecisionAbort,
                        },
                    };
                    last_outcome = Some(outcome);
                    step!(event, *now);
                }
                if sup.state() == SupervisorState::Reprompt {
                    #[allow(clippy::unwrap_used)]
                    // INVARIANT: Reprompt always carries a deadline.
                    let deadline = sup.deadline_s().unwrap();
                    *now = if deadline >= f64::MAX {
                        deadline
                    } else {
                        deadline + 1e-3
                    };
                    step!(SupervisorEvent::Tick, *now);
                }
            }
        }
    }
    let state = sup.state();
    let accepted = state == SupervisorState::Accept
        && last_outcome.as_ref().is_some_and(SessionOutcome::accepted);
    log.push(SessionEvent::SessionEnd {
        state: state.as_str().to_string(),
        attempts: sup.attempts(),
        accepted,
    });
    // Transient classification for the retry layer: aborts (the link
    // never delivered) and pure poor-signal rejects are worth asking
    // the device again; a hard reject is not (retrying an adversary
    // hands them extra guesses).
    let transient = match state {
        SupervisorState::Abort => Some(TransientFailure::Abort),
        SupervisorState::Reject => {
            let poor_signal = last_outcome
                .as_ref()
                .and_then(SessionOutcome::decision)
                .is_some_and(|d| d.reason == Some(p2auth_core::RejectReason::PoorSignal));
            poor_signal.then_some(TransientFailure::PoorSignal)
        }
        _ => None,
    };
    (
        SessionVerdict::Completed {
            state,
            attempts: sup.attempts(),
            accepted,
        },
        transient,
    )
}

fn decision_event(attempt_no: u32, outcome: &SessionOutcome) -> SessionEvent {
    let (kind, accepted, case, reason, score, coverage, gap_blocks) = match outcome {
        SessionOutcome::Decision(d) => (
            "decision",
            d.accepted,
            format!("{:?}", d.case),
            d.reason.map(|r| r.as_str().to_string()),
            d.score,
            None,
            None,
        ),
        SessionOutcome::Degraded {
            decision,
            coverage,
            gap_blocks,
        } => (
            "degraded",
            decision.accepted,
            format!("{:?}", decision.case),
            decision.reason.map(|r| r.as_str().to_string()),
            decision.score,
            Some(*coverage),
            Some(*gap_blocks as u64),
        ),
        SessionOutcome::Abort {
            reason,
            coverage,
            gap_blocks,
        } => (
            "abort",
            false,
            String::new(),
            Some(reason.clone()),
            0.0,
            Some(*coverage),
            Some(*gap_blocks as u64),
        ),
    };
    SessionEvent::Decision {
        attempt: attempt_no,
        kind: kind.to_string(),
        accepted,
        case,
        reason,
        score,
        coverage,
        gap_blocks,
    }
}
