//! Session scheduler: a worker pool multiplexing many supervised
//! sessions over the admission queue.
//!
//! Each worker is long-lived and owns exactly the state the PR-8 bugfix
//! satellites made safe to pool:
//!
//! * **one recycled [`SessionSupervisor`]** — `reset()` between
//!   sessions clears the stale absolute deadline and restores the
//!   re-prompt budget;
//! * **one [`SessionScratch`]** — scribble space, never carried state;
//! * **a shared monotonic clock** that keeps advancing across the
//!   sessions the worker runs (deadline arithmetic saturates instead of
//!   going non-finite);
//! * an **obs context reset** ([`p2auth_obs::reset_ctx`]) at every
//!   task-completion boundary, so back-to-back sessions on one worker
//!   produce disjoint span trees.
//!
//! Profiles come out of the [`ShardedProfileStore`] as `Arc`s; the
//! interned arena is shared read-only and all scoring goes through the
//! fused `decide_session_arena` hot path. Every admitted session also
//! writes a typed [`EventLog`] (`p2auth.events.v1`) — the same contract
//! the replay engine consumes — which is how the chaos suite proves
//! shed sessions never corrupt admitted sessions' logs.

use std::sync::mpsc;
use std::time::Instant;

use p2auth_core::{P2Auth, ProfileArena, SessionScratch};
use p2auth_device::supervisor::{SessionSupervisor, SupervisorEvent, SupervisorState};
use p2auth_device::SessionOutcome;
use p2auth_obs::{
    EventLog, MetricsLocal, SessionEvent, SessionSeeds, ShardedEventStore, SloTracker,
};

use crate::messages::{AuthRequest, AuthResponse, ServerConfig, SessionVerdict, ShedReason};
use crate::queue::AdmissionQueue;
use crate::store::ShardedProfileStore;

/// Per-worker counters published (summed) into the global registry
/// when a serve region drains, so pre-existing handles keep observing
/// fleet totals. Dynamic names (per-shard breakdowns) intentionally
/// stay report-local: publishing them would intern an unbounded name
/// set in the leak-on-register global registry.
const PUBLISHED_COUNTERS: &[&str] = &[
    "server.persist.errors",
    "server.session.accepts",
    "server.session.aborts",
    "server.session.non_accepts",
    "server.shed_unknown_user",
    "server.worker.ctx_leaks",
];

/// Per-worker histograms published (merged bucket-wise) into the
/// global registry when a serve region drains.
const PUBLISHED_HISTOGRAMS: &[&str] = &[
    "server.session.latency_ns",
    "server.session.latency.aborted_ns",
    "server.session.latency.shed_ns",
];

/// One admitted session's full record: the response plus its event log.
#[derive(Debug)]
pub struct SessionRecord {
    /// The `p2auth.server.v1` response.
    pub response: AuthResponse,
    /// The session's `p2auth.events.v1` log.
    pub log: EventLog,
}

/// What one [`serve`] region processed.
#[derive(Debug)]
pub struct ServeReport {
    /// Admitted sessions, in completion order.
    pub sessions: Vec<SessionRecord>,
    /// Span-context leaks repaired at task boundaries (should be 0; a
    /// nonzero count means some session leaked an adopt guard).
    pub ctx_leaks_repaired: u64,
    /// Each worker's private metrics registry, indexed by worker id —
    /// the per-worker half of the snapshot/merge pattern.
    pub worker_metrics: Vec<MetricsLocal>,
    /// All worker registries merged (counters summed, histograms
    /// merged bucket-wise): outcome-labelled latency histograms
    /// (`server.session.latency_ns` / `.shed_ns` / `.aborted_ns`),
    /// session counters, and per-shard breakdowns
    /// (`server.shard.NN.*`).
    pub metrics: MetricsLocal,
}

/// Observability sinks for one serve region, passed alongside the
/// (`Copy`) [`ServerConfig`]: both are optional and default to off, so
/// [`serve`] costs nothing extra.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeObs<'a> {
    /// When set, every admitted session's event log is durably
    /// appended to this sharded store (keyed by user id — the same
    /// splitmix64 routing as the profile store).
    pub persist: Option<&'a ShardedEventStore>,
    /// When set, every admitted session feeds one `(latency, error?)`
    /// sample to this SLO tracker (error = shed or aborted).
    pub slo: Option<&'a SloTracker>,
}

/// Submission handle passed to the driver closure of [`serve`].
///
/// `Sync`: a fleet driver may fan submissions out over its own threads.
#[derive(Debug, Clone, Copy)]
pub struct Submitter<'a> {
    queue: &'a AdmissionQueue,
}

impl Submitter<'_> {
    /// Non-blocking admission; sheds (request handed back) at capacity
    /// or after shutdown. See [`AdmissionQueue::try_submit`].
    pub fn try_submit(&self, req: AuthRequest) -> Result<(), (AuthRequest, ShedReason)> {
        self.queue.try_submit(req)
    }

    /// Blocking admission with FIFO backpressure. See
    /// [`AdmissionQueue::submit_blocking`].
    pub fn submit_blocking(&self, req: AuthRequest) -> Result<(), (AuthRequest, ShedReason)> {
        self.queue.submit_blocking(req)
    }

    /// Requests admitted and waiting for a worker.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.queue.depth()
    }
}

/// Runs a scoped serve region: spawns `config.num_workers` workers,
/// hands the driver a [`Submitter`], and on driver return closes
/// admission, drains the queue gracefully (admitted sessions still
/// run; new submissions shed with [`ShedReason::Shutdown`]) and joins
/// every worker. Returns the report plus the driver's own result.
///
/// The region cannot hang: workers exit when the closed queue is empty,
/// the queue unparks every backpressured producer on close, and each
/// session's supervisor carries finite deadlines.
pub fn serve<T>(
    system: &P2Auth,
    store: &ShardedProfileStore,
    config: &ServerConfig,
    driver: impl FnOnce(Submitter<'_>) -> T,
) -> (ServeReport, T) {
    serve_obs(system, store, config, ServeObs::default(), driver)
}

/// [`serve`] with observability sinks: optional durable event-log
/// persistence and SLO tracking (see [`ServeObs`]). Each worker
/// records into its own [`MetricsLocal`] — no shared atomics on the
/// session hot path — and the locals are merged into
/// [`ServeReport::metrics`] when the region drains, with the known
/// fleet-total names also published into the global registry.
pub fn serve_obs<T>(
    system: &P2Auth,
    store: &ShardedProfileStore,
    config: &ServerConfig,
    obs: ServeObs<'_>,
    driver: impl FnOnce(Submitter<'_>) -> T,
) -> (ServeReport, T) {
    let queue = AdmissionQueue::new(config.queue_capacity);
    let (tx, rx) = mpsc::channel::<SessionRecord>();
    let num_workers = config.num_workers.max(1);
    p2auth_obs::gauge!("server.workers").set(num_workers as f64);
    let (driver_out, worker_metrics) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..num_workers)
            .map(|worker_idx| {
                let queue = &queue;
                let tx = tx.clone();
                s.spawn(move || worker_loop(worker_idx, system, store, config, queue, &tx, obs))
            })
            .collect();
        drop(tx);
        let out = driver(Submitter { queue: &queue });
        // Graceful drain: no new admissions, queued work still runs.
        queue.close();
        let locals: Vec<MetricsLocal> = handles
            .into_iter()
            .map(|h| h.join().expect("serve worker panicked"))
            .collect();
        (out, locals)
    });
    let sessions: Vec<SessionRecord> = rx.into_iter().collect();
    let ctx_leaks_repaired = sessions
        .iter()
        .filter(|r| r.log.meta_get("ctx_leak").is_some())
        .count() as u64;
    let mut metrics = MetricsLocal::new();
    for local in &worker_metrics {
        metrics.merge(local);
    }
    publish_fleet_totals(&metrics);
    (
        ServeReport {
            sessions,
            ctx_leaks_repaired,
            worker_metrics,
            metrics,
        },
        driver_out,
    )
}

/// Publishes the merged per-worker registries into the global registry
/// — only the fixed fleet-total name set, so repeated serve regions
/// never grow the interned name table.
fn publish_fleet_totals(merged: &MetricsLocal) {
    for &name in PUBLISHED_COUNTERS {
        let v = merged.counter(name);
        if v > 0 {
            p2auth_obs::metrics::counter_handle(name).add(v);
        }
    }
    for &name in PUBLISHED_HISTOGRAMS {
        if let Some(h) = merged.histogram(name) {
            p2auth_obs::metrics::histogram_handle(name).merge_from(h);
        }
    }
}

fn worker_loop(
    worker_idx: usize,
    system: &P2Auth,
    store: &ShardedProfileStore,
    config: &ServerConfig,
    queue: &AdmissionQueue,
    tx: &mpsc::Sender<SessionRecord>,
    obs: ServeObs<'_>,
) -> MetricsLocal {
    let mut scratch = SessionScratch::new();
    let mut sup = SessionSupervisor::new(config.supervisor);
    // The worker's monotonic session clock: shared by every session
    // this worker runs, never rewound — the deployment scenario the
    // supervisor's deadline fixes exist for.
    let mut clock_s = 0.0_f64;
    // The worker's private registry: plain integers, no contention.
    let mut local = MetricsLocal::new();
    while let Some(req) = queue.pop() {
        let t0 = Instant::now();
        let mut log = EventLog::new(SessionSeeds::default());
        log.meta_push("request_id", req.request_id.to_string());
        log.meta_push("user_id", req.user_id.to_string());
        log.meta_push("worker", worker_idx.to_string());
        let verdict = {
            let _span = p2auth_obs::span!("server.session");
            match store.get(req.user_id) {
                None => {
                    local.incr("server.shed_unknown_user");
                    SessionVerdict::Shed(ShedReason::UnknownUser)
                }
                Some(entry) => {
                    sup.reset();
                    run_session(
                        system,
                        &entry.arena,
                        &mut scratch,
                        &mut sup,
                        &mut clock_s,
                        &req,
                        &mut log,
                    )
                }
            }
        };
        // Task-completion boundary (the session span is closed): a
        // context leaked by this session must not parent the next one.
        if p2auth_obs::reset_ctx() {
            local.incr("server.worker.ctx_leaks");
            log.meta_push("ctx_leak", "repaired");
        }
        let latency_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Outcome-labelled latency: completed, shed and aborted
        // sessions go to separate histograms, so the completed-auth
        // latency story is not diluted (and sheds don't vanish).
        let shard = p2auth_obs::persist::shard_of(req.user_id, config.shard_count);
        let mut error = false;
        match &verdict {
            SessionVerdict::Shed(_) => {
                error = true;
                local.record("server.session.latency.shed_ns", latency_ns);
                local.incr(&format!("server.shard.{shard:02}.sheds"));
            }
            SessionVerdict::Completed {
                state: SupervisorState::Abort,
                ..
            } => {
                error = true;
                local.incr("server.session.aborts");
                local.incr("server.session.non_accepts");
                local.record("server.session.latency.aborted_ns", latency_ns);
            }
            SessionVerdict::Completed { accepted, .. } => {
                local.incr(if *accepted {
                    "server.session.accepts"
                } else {
                    "server.session.non_accepts"
                });
                if *accepted {
                    local.incr(&format!("server.shard.{shard:02}.accepts"));
                }
                local.record("server.session.latency_ns", latency_ns);
            }
        }
        local.incr(&format!("server.shard.{shard:02}.sessions"));
        local.record(&format!("server.shard.{shard:02}.latency_ns"), latency_ns);
        if let Some(slo) = obs.slo {
            slo.record(latency_ns, error);
        }
        if let Some(persist) = obs.persist {
            if persist
                .append(req.user_id, log.encode().as_bytes())
                .is_err()
            {
                // Persistence is best-effort on the hot path: a full
                // disk must degrade observability, not availability.
                local.incr("server.persist.errors");
            }
        }
        let record = SessionRecord {
            response: AuthResponse {
                request_id: req.request_id,
                user_id: req.user_id,
                verdict,
                latency_ns,
                worker: worker_idx,
            },
            log,
        };
        if tx.send(record).is_err() {
            // Receiver gone: the serve region is being torn down.
            return local;
        }
    }
    local
}

/// Drives one session's supervisor from its pre-acquired attempts on
/// the worker's shared clock. Identical policy to
/// [`p2auth_device::run_supervised`], but against the store's interned
/// arena, a recycled supervisor, and a clock that does not restart at
/// zero. Exhausted or `None` attempts advance time past the live
/// deadline, so the watchdog — never a hang — ends the session.
#[allow(clippy::too_many_lines)]
fn run_session(
    system: &P2Auth,
    arena: &ProfileArena,
    scratch: &mut SessionScratch,
    sup: &mut SessionSupervisor,
    now: &mut f64,
    req: &AuthRequest,
    log: &mut EventLog,
) -> SessionVerdict {
    macro_rules! step {
        ($event:expr, $now:expr) => {{
            let event = $event;
            let from = sup.state();
            let to = sup.step(event, $now);
            if from == to {
                log.push(SessionEvent::DeadlineTick {
                    state: from.as_str().to_string(),
                    now_s: $now,
                    deadline_s: sup.deadline_s(),
                });
            } else {
                log.push(SessionEvent::Transition {
                    from: from.as_str().to_string(),
                    to: to.as_str().to_string(),
                    event: event.name().to_string(),
                    now_s: $now,
                });
            }
            to
        }};
    }
    step!(SupervisorEvent::Start, *now);
    let mut deliveries = req.attempts.iter();
    let mut last_outcome: Option<SessionOutcome> = None;
    while !sup.state().is_terminal() {
        let attempt_no = sup.reprompts_used();
        match deliveries.next() {
            None | Some(None) => {
                // Nothing (more) was delivered: let time run out.
                let deadline = sup.deadline_s().unwrap_or(*now);
                *now = if deadline >= f64::MAX {
                    deadline
                } else {
                    deadline + 1e-3
                };
                step!(SupervisorEvent::Tick, *now);
            }
            Some(Some((recording, quality))) => {
                *now += 2.0;
                step!(SupervisorEvent::CollectionComplete, *now);
                *now += 0.5;
                let assessment = system.assess_quality_arena(arena, recording);
                let assess_event = match &assessment {
                    Ok(q) => {
                        log.push(SessionEvent::Assessment {
                            attempt: attempt_no,
                            detected: q.detected as u32,
                            usable: q.usable as u32,
                            mean_sqi: q.mean_sqi,
                        });
                        let usable = if system.config().sqi_gating {
                            q.usable
                        } else {
                            q.detected
                        };
                        SupervisorEvent::AssessmentReady {
                            usable,
                            detected: q.detected,
                            mean_sqi: q.mean_sqi,
                        }
                    }
                    Err(_) => SupervisorEvent::AssessmentFailed,
                };
                step!(assess_event, *now);
                if sup.state() == SupervisorState::Deciding {
                    *now += 0.5;
                    let outcome = p2auth_device::decide_session_arena(
                        system,
                        arena,
                        scratch,
                        req.claimed_pin.as_ref(),
                        recording,
                        *quality,
                    );
                    log.push(decision_event(attempt_no, &outcome));
                    let event = match &outcome {
                        SessionOutcome::Abort { .. } => SupervisorEvent::DecisionAbort,
                        other => match other.decision() {
                            Some(d) if d.accepted => SupervisorEvent::DecisionAccept,
                            Some(d) => SupervisorEvent::DecisionReject {
                                poor_signal: d.reason
                                    == Some(p2auth_core::RejectReason::PoorSignal),
                            },
                            None => SupervisorEvent::DecisionAbort,
                        },
                    };
                    last_outcome = Some(outcome);
                    step!(event, *now);
                }
                if sup.state() == SupervisorState::Reprompt {
                    #[allow(clippy::unwrap_used)]
                    // INVARIANT: Reprompt always carries a deadline.
                    let deadline = sup.deadline_s().unwrap();
                    *now = if deadline >= f64::MAX {
                        deadline
                    } else {
                        deadline + 1e-3
                    };
                    step!(SupervisorEvent::Tick, *now);
                }
            }
        }
    }
    let state = sup.state();
    let accepted = state == SupervisorState::Accept
        && last_outcome.as_ref().is_some_and(SessionOutcome::accepted);
    log.push(SessionEvent::SessionEnd {
        state: state.as_str().to_string(),
        attempts: sup.attempts(),
        accepted,
    });
    SessionVerdict::Completed {
        state,
        attempts: sup.attempts(),
        accepted,
    }
}

fn decision_event(attempt_no: u32, outcome: &SessionOutcome) -> SessionEvent {
    let (kind, accepted, case, reason, score, coverage, gap_blocks) = match outcome {
        SessionOutcome::Decision(d) => (
            "decision",
            d.accepted,
            format!("{:?}", d.case),
            d.reason.map(|r| r.as_str().to_string()),
            d.score,
            None,
            None,
        ),
        SessionOutcome::Degraded {
            decision,
            coverage,
            gap_blocks,
        } => (
            "degraded",
            decision.accepted,
            format!("{:?}", decision.case),
            decision.reason.map(|r| r.as_str().to_string()),
            decision.score,
            Some(*coverage),
            Some(*gap_blocks as u64),
        ),
        SessionOutcome::Abort {
            reason,
            coverage,
            gap_blocks,
        } => (
            "abort",
            false,
            String::new(),
            Some(reason.clone()),
            0.0,
            Some(*coverage),
            Some(*gap_blocks as u64),
        ),
    };
    SessionEvent::Decision {
        attempt: attempt_no,
        kind: kind.to_string(),
        accepted,
        case,
        reason,
        score,
        coverage,
        gap_blocks,
    }
}
