//! Sharded in-memory profile store.
//!
//! One entry per enrolled user id, each wrapping a
//! [`p2auth_core::ProfileArena`]: the profile's constant tables are
//! folded **once at insert** and every session for that user shares the
//! same `Arc` — the arena's read-only concurrency contract (pinned by
//! compile-time `Send + Sync` assertions in `p2auth-core::arena`) is
//! what makes handing `&arena` to any worker sound.
//!
//! Sharding splits the key space over independent `RwLock`s so profile
//! lookups from N workers don't serialize on one lock. The shard of a
//! key is a pure function of the key, so there is no cross-shard
//! coordination and no global lock order to get wrong.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use p2auth_core::{P2Auth, ProfileArena, UserProfile};

/// One interned profile: built once, shared read-only by every session
/// authenticating this user.
#[derive(Debug)]
pub struct StoredProfile {
    /// The user's folded constant tables.
    pub arena: ProfileArena,
}

/// A sharded `user_id → Arc<StoredProfile>` map.
#[derive(Debug)]
pub struct ShardedProfileStore {
    shards: Vec<RwLock<HashMap<u64, Arc<StoredProfile>>>>,
}

impl ShardedProfileStore {
    /// An empty store with `shard_count` shards (clamped to ≥ 1).
    #[must_use]
    pub fn new(shard_count: usize) -> Self {
        let n = shard_count.max(1);
        Self {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// `user_id → shard index`: the shared splitmix64 finalizer
    /// ([`p2auth_obs::persist::shard_of`]), so adjacent ids spread
    /// across shards instead of clustering in one — and so the event
    /// persistence layer routes a user's session logs to the same
    /// shard index that holds their profile.
    fn shard_of(&self, user_id: u64) -> usize {
        p2auth_obs::persist::shard_of(user_id, self.shards.len())
    }

    fn shard(&self, user_id: u64) -> &RwLock<HashMap<u64, Arc<StoredProfile>>> {
        &self.shards[self.shard_of(user_id)]
    }

    /// Folds `profile` into an arena and interns it under `user_id`,
    /// replacing any previous entry (re-enrollment).
    pub fn insert(&self, system: &P2Auth, user_id: u64, profile: &UserProfile) {
        self.insert_arena(user_id, system.arena(profile));
    }

    /// Interns an already-built arena under `user_id`.
    pub fn insert_arena(&self, user_id: u64, arena: ProfileArena) {
        let entry = Arc::new(StoredProfile { arena });
        let mut shard = self
            .shard(user_id)
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.insert(user_id, entry);
        drop(shard);
        p2auth_obs::gauge!("server.store.profiles").set(self.len() as f64);
    }

    /// The interned profile for `user_id`, if enrolled. Cloning the
    /// `Arc` is the whole cost — the arena itself is never copied.
    #[must_use]
    pub fn get(&self, user_id: u64) -> Option<Arc<StoredProfile>> {
        self.shard(user_id)
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&user_id)
            .cloned()
    }

    /// Total enrolled profiles across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// Whether no profile is enrolled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (fixed at construction).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Resident bytes of all interned arenas (constant tables only).
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .values()
                    .map(|e| e.arena.bytes())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Store-level tests that need a real profile live in the
    // integration suites; here the shard math is pinned standalone.
    #[test]
    fn shard_of_is_stable_and_in_range() {
        let store = ShardedProfileStore::new(16);
        for id in 0..1000_u64 {
            let s = store.shard_of(id);
            assert!(s < 16);
            assert_eq!(s, store.shard_of(id), "shard must be a pure function");
        }
    }

    #[test]
    fn adjacent_ids_spread_across_shards() {
        let store = ShardedProfileStore::new(16);
        let mut hit = vec![false; 16];
        for id in 0..64_u64 {
            hit[store.shard_of(id)] = true;
        }
        let used = hit.iter().filter(|&&h| h).count();
        assert!(
            used >= 12,
            "64 adjacent ids landed in only {used}/16 shards"
        );
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let store = ShardedProfileStore::new(0);
        assert_eq!(store.shard_count(), 1);
        assert!(store.is_empty());
        assert_eq!(store.get(42).map(|_| ()), None);
    }
}
