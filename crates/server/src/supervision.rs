//! Worker supervision: panic capture and poison-profile quarantine.
//!
//! A fleet worker must not take the whole serve region down because one
//! session panicked. The scheduler wraps session execution in
//! [`std::panic::catch_unwind`] and converts an escaped panic into a
//! typed [`crate::SessionVerdict::Crashed`] — event-logged, counted,
//! and an SLO error — then rebuilds the worker's session state
//! (supervisor + scratch) so serve capacity is restored immediately.
//!
//! The second half is **poison-profile detection**: if the *same*
//! profile crashes its worker repeatedly (a corrupt arena, a pathologic
//! template), retrying it would crash-loop the fleet. [`Supervision`]
//! counts crashes per `user_id` and quarantines the profile after
//! [`SupervisionConfig::quarantine_after`] crashes; subsequent requests
//! for it shed with [`crate::ShedReason::Quarantined`] instead of
//! running.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// Panic-capture and quarantine policy. `Copy`, carried inside
/// [`crate::ServerConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisionConfig {
    /// Capture worker panics and convert them into
    /// [`crate::SessionVerdict::Crashed`]. When false, a panicking
    /// session kills its worker thread (the serve region still returns
    /// — see the scheduler's join handling — but that worker's
    /// capacity is lost for the rest of the region).
    pub catch_panics: bool,
    /// Crashes by the same profile before it is quarantined.
    pub quarantine_after: u32,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self {
            catch_panics: true,
            quarantine_after: 3,
        }
    }
}

/// What [`Supervision::record_crash`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRecord {
    /// Total crashes recorded against this profile, including this one.
    pub crashes: u32,
    /// Whether this crash tripped the quarantine threshold (reported
    /// exactly once per profile).
    pub quarantined_now: bool,
}

/// Region-wide crash bookkeeping, shared by all workers.
///
/// Lock discipline: both maps sit behind plain [`Mutex`]es and are
/// touched only on the crash path and (for [`Supervision::is_quarantined`])
/// once per session pickup — never inside the scoring hot loop.
#[derive(Debug, Default)]
pub struct Supervision {
    crash_counts: Mutex<HashMap<u64, u32>>,
    quarantined: Mutex<HashSet<u64>>,
}

impl Supervision {
    /// Empty bookkeeping: no crashes, nothing quarantined.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a crash against `user_id` and quarantines the profile
    /// once its count reaches `quarantine_after` (0 disables
    /// quarantine entirely).
    pub fn record_crash(&self, user_id: u64, quarantine_after: u32) -> CrashRecord {
        #[allow(clippy::unwrap_used)] // INVARIANT: no panic while holding the lock.
        let mut counts = self.crash_counts.lock().unwrap();
        let count = counts.entry(user_id).or_insert(0);
        *count += 1;
        let crashes = *count;
        drop(counts);
        let quarantined_now = quarantine_after > 0 && crashes == quarantine_after;
        if quarantined_now {
            #[allow(clippy::unwrap_used)]
            self.quarantined.lock().unwrap().insert(user_id);
        }
        CrashRecord {
            crashes,
            quarantined_now,
        }
    }

    /// Whether requests for `user_id` should shed instead of running.
    #[must_use]
    pub fn is_quarantined(&self, user_id: u64) -> bool {
        #[allow(clippy::unwrap_used)]
        self.quarantined.lock().unwrap().contains(&user_id)
    }

    /// Profiles currently quarantined.
    #[must_use]
    pub fn quarantined_count(&self) -> usize {
        #[allow(clippy::unwrap_used)]
        self.quarantined.lock().unwrap().len()
    }

    /// Total crashes recorded across all profiles.
    #[must_use]
    pub fn total_crashes(&self) -> u64 {
        #[allow(clippy::unwrap_used)]
        self.crash_counts
            .lock()
            .unwrap()
            .values()
            .map(|&c| u64::from(c))
            .sum()
    }
}

/// Extracts a human-readable message from a captured panic payload
/// (the `Box<dyn Any>` that [`std::panic::catch_unwind`] returns).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_trips_exactly_once_at_threshold() {
        let sup = Supervision::new();
        assert!(!sup.is_quarantined(7));
        let first = sup.record_crash(7, 3);
        assert_eq!(first.crashes, 1);
        assert!(!first.quarantined_now);
        let second = sup.record_crash(7, 3);
        assert!(!second.quarantined_now);
        assert!(!sup.is_quarantined(7));
        let third = sup.record_crash(7, 3);
        assert_eq!(third.crashes, 3);
        assert!(third.quarantined_now, "threshold crash quarantines");
        assert!(sup.is_quarantined(7));
        // Further crashes (e.g. raced by another worker) do not
        // re-report the quarantine.
        let fourth = sup.record_crash(7, 3);
        assert_eq!(fourth.crashes, 4);
        assert!(!fourth.quarantined_now);
        assert_eq!(sup.quarantined_count(), 1);
        assert_eq!(sup.total_crashes(), 4);
    }

    #[test]
    fn zero_threshold_disables_quarantine() {
        let sup = Supervision::new();
        for _ in 0..10 {
            let rec = sup.record_crash(1, 0);
            assert!(!rec.quarantined_now);
        }
        assert!(!sup.is_quarantined(1));
        assert_eq!(sup.quarantined_count(), 0);
    }

    #[test]
    fn crashes_are_counted_per_profile() {
        let sup = Supervision::new();
        sup.record_crash(1, 2);
        sup.record_crash(2, 2);
        assert!(!sup.is_quarantined(1));
        assert!(!sup.is_quarantined(2));
        sup.record_crash(1, 2);
        assert!(sup.is_quarantined(1), "profile 1 hit its threshold");
        assert!(!sup.is_quarantined(2), "profile 2 did not");
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("boom {}", 42)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "boom 42");
        let caught = std::panic::catch_unwind(|| panic!("static boom")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "static boom");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(17_u32)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }
}
