//! Admission-control integration suite for the fleet server.
//!
//! Exercises the `p2auth.server.v1` overload contract end-to-end
//! through a live serve region (real workers, real scoring):
//!
//! * queue-full is a **typed** shed — the request comes back intact
//!   with [`ShedReason::QueueFull`], no panic, no silent drop;
//! * backpressured producers are released strictly FIFO, so a shed
//!   request re-submitted through blocking admission still completes;
//! * under chaos (seeds 1–3), shed sessions leave **no trace**: every
//!   admitted session's event log round-trips through the
//!   `p2auth.events.v1` codec and is semantically identical to a
//!   serial re-run of the same request with no shedding pressure at
//!   all.

use std::collections::{BTreeMap, BTreeSet};

use p2auth_obs::{EventLog, SessionEvent};
use p2auth_server::{build_fleet, serve, FleetConfig, ServerConfig, SessionVerdict, ShedReason};

fn fleet(seed: u64, chaos: bool, hang_every: usize) -> FleetConfig {
    FleetConfig {
        num_devices: 4,
        sessions_per_device: 2,
        enrolled_users: 2,
        seed,
        chaos,
        hang_every,
    }
}

/// Strips scheduling accidents out of a session log so two runs of the
/// same request compare equal: the worker's shared clock offset (each
/// worker's clock keeps advancing across the sessions it happens to
/// run) and the worker id in the metadata. Everything decision-relevant
/// — state path, assessments, votes, scores, attempts, the session end
/// — is kept bit-for-bit.
fn normalized(log: &EventLog) -> EventLog {
    let mut out = EventLog::new(log.seeds);
    for (k, v) in &log.meta {
        if k != "worker" {
            out.meta_push(k.clone(), v.clone());
        }
    }
    for ev in &log.events {
        out.push(match ev.event.clone() {
            SessionEvent::Transition {
                from, to, event, ..
            } => SessionEvent::Transition {
                from,
                to,
                event,
                now_s: 0.0,
            },
            SessionEvent::DeadlineTick { state, .. } => SessionEvent::DeadlineTick {
                state,
                now_s: 0.0,
                deadline_s: None,
            },
            other => other,
        });
    }
    out
}

#[test]
fn queue_full_sheds_typed_and_resubmission_completes_everything() {
    let scenario = build_fleet(&fleet(21, false, 0));
    let total = scenario.requests.len();
    assert_eq!(total, 8);
    let server = ServerConfig {
        num_workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let (report, shed_count) = serve(&scenario.system, &scenario.store, &server, |submitter| {
        // Burst far past capacity without blocking: the single worker
        // cannot score sessions as fast as we submit, so some of these
        // must shed — and every shed must be typed, with the request
        // handed back intact.
        let mut shed = Vec::new();
        for req in scenario.requests.iter().cloned() {
            let id = req.request_id;
            if let Err((back, why)) = submitter.try_submit(req) {
                assert_eq!(why, ShedReason::QueueFull, "pre-close shed reason");
                assert_eq!(back.request_id, id, "shed request must come back intact");
                assert_eq!(back.attempts.len(), 1);
                shed.push(back);
            }
        }
        assert!(
            !shed.is_empty(),
            "a burst of {total} against capacity 1 must shed"
        );
        // A shed is an invitation to retry with backpressure: blocking
        // re-submission parks FIFO and completes every single one.
        let count = shed.len();
        for req in shed {
            submitter
                .submit_blocking(req)
                .expect("pre-close blocking admission");
        }
        count
    });
    assert!(shed_count > 0);
    assert_eq!(report.sessions.len(), total, "shed + retry loses nothing");
    let ids: BTreeSet<u64> = report
        .sessions
        .iter()
        .map(|r| r.response.request_id)
        .collect();
    assert_eq!(ids.len(), total, "exactly one response per request id");
    assert!(report
        .sessions
        .iter()
        .all(|r| matches!(r.response.verdict, SessionVerdict::Completed { .. })));
    assert_eq!(report.ctx_leaks_repaired, 0);
}

#[test]
fn shed_sessions_never_corrupt_admitted_logs_under_chaos() {
    for seed in 1..=3_u64 {
        let scenario = build_fleet(&fleet(seed, true, 3));
        let total = scenario.requests.len();
        let overloaded = ServerConfig {
            num_workers: 2,
            queue_capacity: 2,
            ..ServerConfig::default()
        };
        // Overload run: even requests are guaranteed admission through
        // blocking backpressure; odd requests race the queue and may
        // shed. Interleaving sheds *between* admitted sessions is the
        // corruption scenario under test.
        let (report, shed_ids) = serve(
            &scenario.system,
            &scenario.store,
            &overloaded,
            |submitter| {
                let mut shed_ids = BTreeSet::new();
                for (i, req) in scenario.requests.iter().cloned().enumerate() {
                    if i % 2 == 0 {
                        submitter.submit_blocking(req).expect("pre-close admission");
                    } else if let Err((back, why)) = submitter.try_submit(req) {
                        assert_eq!(why, ShedReason::QueueFull, "seed {seed}: typed shed");
                        shed_ids.insert(back.request_id);
                    }
                }
                shed_ids
            },
        );
        let admitted: BTreeSet<u64> = report
            .sessions
            .iter()
            .map(|r| r.response.request_id)
            .collect();
        assert_eq!(
            admitted.len(),
            report.sessions.len(),
            "seed {seed}: duplicate response"
        );
        assert!(
            admitted.is_disjoint(&shed_ids),
            "seed {seed}: a shed request must not also complete"
        );
        assert_eq!(
            admitted.len() + shed_ids.len(),
            total,
            "seed {seed}: every request is accounted for exactly once"
        );

        // Baseline: the same admitted requests, serial, no shedding
        // pressure at all. If sheds corrupted anything, the overloaded
        // logs diverge from these.
        let serial = ServerConfig {
            num_workers: 1,
            queue_capacity: total.max(1),
            ..ServerConfig::default()
        };
        let mut ordered: Vec<_> = scenario
            .requests
            .iter()
            .filter(|r| admitted.contains(&r.request_id))
            .cloned()
            .collect();
        ordered.sort_by_key(|r| r.request_id);
        let (baseline, ()) = serve(&scenario.system, &scenario.store, &serial, |submitter| {
            for req in ordered {
                submitter.submit_blocking(req).expect("baseline admission");
            }
        });
        let baseline_logs: BTreeMap<u64, &EventLog> = baseline
            .sessions
            .iter()
            .map(|r| (r.response.request_id, &r.log))
            .collect();

        for record in &report.sessions {
            let id = record.response.request_id;
            // Structural integrity: the log round-trips through the
            // `p2auth.events.v1` codec unchanged.
            let decoded = EventLog::decode(&record.log.encode())
                .unwrap_or_else(|e| panic!("seed {seed} req {id}: log corrupt: {e}"));
            assert_eq!(
                decoded, record.log,
                "seed {seed} req {id}: codec round-trip"
            );
            assert_eq!(
                record.log.meta_get("request_id"),
                Some(id.to_string().as_str()),
                "seed {seed} req {id}: log belongs to its session"
            );
            // The log must end the session it reports.
            match record.log.events.last().map(|e| &e.event) {
                Some(SessionEvent::SessionEnd {
                    state, accepted, ..
                }) => match &record.response.verdict {
                    SessionVerdict::Completed {
                        state: vs,
                        accepted: va,
                        ..
                    } => {
                        assert_eq!(state, vs.as_str(), "seed {seed} req {id}: end state");
                        assert_eq!(accepted, va, "seed {seed} req {id}: end verdict");
                    }
                    SessionVerdict::Shed(_) => {
                        panic!("seed {seed} req {id}: shed session wrote events")
                    }
                    SessionVerdict::Crashed { reason } => {
                        panic!("seed {seed} req {id}: no chaos plan is set: {reason}")
                    }
                },
                other => panic!("seed {seed} req {id}: log must end in SessionEnd, got {other:?}"),
            }
            // Semantic identity with the pressure-free serial run,
            // modulo the worker id and each worker's clock offset.
            let base = baseline_logs[&id];
            if let Some(div) = normalized(base).first_divergence(&normalized(&record.log)) {
                panic!("seed {seed} req {id}: overload diverged from serial baseline: {div:?}");
            }
            assert_eq!(
                record.response.verdict,
                baseline
                    .sessions
                    .iter()
                    .find(|r| r.response.request_id == id)
                    .expect("baseline ran every admitted id")
                    .response
                    .verdict,
                "seed {seed} req {id}: verdict under load == verdict serial"
            );
        }
    }
}
