//! Chaos suite for the fault-tolerance layer: injected worker panics,
//! poison-profile quarantine, transient-failure retry, clock skew, and
//! full kill-restart cycles over the persisted store.
//!
//! The invariants under test are the PR's acceptance criteria: one
//! injected panic yields exactly one `Crashed` verdict (zero crash
//! amplification) and the worker keeps serving; a crash-looping
//! profile is quarantined instead of taking the fleet down; a
//! kill-restart cycle recovers completed-session accounting
//! bit-identically from the shards (every persisted record re-encodes
//! to its own bytes — the same check `replay --verify` runs); and no
//! injection ever hangs a session.

use std::collections::BTreeSet;
use std::path::PathBuf;

use p2auth_obs::{persist, EventLog, SessionEvent};
use p2auth_server::{
    build_fleet, kill_restart_cycle, run_fleet_obs, ChaosPlan, ClockSkew, FleetConfig, RetryPolicy,
    ServeObs, ServeRegion, ServerConfig, SessionVerdict, ShedReason, SupervisionConfig,
};

fn fleet(seed: u64) -> FleetConfig {
    FleetConfig {
        num_devices: 4,
        sessions_per_device: 3,
        enrolled_users: 2,
        seed,
        chaos: true,
        hang_every: 0,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("p2auth_server_chaos_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn injected_panic_yields_exactly_one_crashed_outcome() {
    for seed in 1..=3_u64 {
        let scenario = build_fleet(&fleet(seed));
        let total = scenario.requests.len();
        let victim = scenario.requests[total / 2].request_id;
        let plan = ChaosPlan::panics([victim]);
        let server = ServerConfig {
            num_workers: 2,
            queue_capacity: 4,
            ..ServerConfig::default()
        };
        let (report, shed) = run_fleet_obs(
            &scenario,
            &server,
            ServeObs {
                chaos: Some(&plan),
                ..ServeObs::default()
            },
        );
        assert_eq!(plan.injected_panics(), 1, "seed {seed}: one panic fired");
        assert_eq!(
            report.sessions.len() + shed.len(),
            total,
            "seed {seed}: every request still gets exactly one response"
        );
        let crashed: Vec<_> = report
            .sessions
            .iter()
            .filter(|r| r.response.verdict.crashed())
            .collect();
        assert_eq!(
            crashed.len(),
            1,
            "seed {seed}: zero crash amplification — one panic, one Crashed"
        );
        assert_eq!(crashed[0].response.request_id, victim);
        assert!(
            crashed[0].log.events.iter().any(|e| matches!(
                &e.event,
                SessionEvent::Fault { kind, .. } if kind == "crashed"
            )),
            "seed {seed}: the crash is event-logged"
        );
        assert_eq!(
            report.metrics.counter("server.session.crashes"),
            1,
            "seed {seed}: crash counted"
        );
        assert_eq!(
            report.metrics.counter("server.worker.respawns"),
            1,
            "seed {seed}: worker state respawned in place"
        );
        assert_eq!(
            report.worker_panics, 0,
            "seed {seed}: no worker thread died — the panic was captured"
        );
        // Throughput recovery: every other session completed or shed
        // normally on the respawned worker state.
        assert!(
            report
                .sessions
                .iter()
                .filter(|r| r.response.request_id != victim)
                .all(|r| !r.response.verdict.crashed()),
            "seed {seed}: no collateral crashes"
        );
    }
}

#[test]
fn uncaptured_worker_panic_degrades_serve_instead_of_aborting() {
    // Satellite regression: with panic capture off, the panicking
    // session kills its worker thread — but `serve` must still drain,
    // join, and return a report instead of propagating the panic.
    let scenario = build_fleet(&fleet(1));
    let total = scenario.requests.len();
    let victim = scenario.requests[0].request_id;
    let plan = ChaosPlan::panics([victim]);
    let server = ServerConfig {
        num_workers: 2,
        queue_capacity: 4,
        supervision: SupervisionConfig {
            catch_panics: false,
            ..SupervisionConfig::default()
        },
        ..ServerConfig::default()
    };
    let (report, shed) = run_fleet_obs(
        &scenario,
        &server,
        ServeObs {
            chaos: Some(&plan),
            ..ServeObs::default()
        },
    );
    assert_eq!(report.worker_panics, 1, "one worker died to the panic");
    assert_eq!(
        report.sessions.len() + shed.len(),
        total - 1,
        "only the dead worker's in-hand session is lost"
    );
    assert!(
        report
            .sessions
            .iter()
            .all(|r| !r.response.verdict.crashed()),
        "without capture there is no Crashed verdict, just a dead worker"
    );
}

#[test]
fn repeated_crashes_quarantine_the_poison_profile() {
    // All sessions of user 0 panic; after `quarantine_after` crashes
    // the remaining ones must shed with Quarantined instead of
    // crash-looping the worker.
    let scenario = build_fleet(&FleetConfig {
        num_devices: 2,
        sessions_per_device: 5,
        enrolled_users: 2,
        seed: 3,
        chaos: false,
        hang_every: 0,
    });
    let poison: Vec<u64> = scenario
        .requests
        .iter()
        .filter(|r| r.user_id == 0)
        .map(|r| r.request_id)
        .collect();
    assert_eq!(poison.len(), 5);
    let plan = ChaosPlan::panics(poison.iter().copied());
    let server = ServerConfig {
        num_workers: 1, // deterministic processing order
        queue_capacity: 4,
        supervision: SupervisionConfig {
            catch_panics: true,
            quarantine_after: 2,
        },
        ..ServerConfig::default()
    };
    let (report, _) = run_fleet_obs(
        &scenario,
        &server,
        ServeObs {
            chaos: Some(&plan),
            ..ServeObs::default()
        },
    );
    let crashed = report
        .sessions
        .iter()
        .filter(|r| r.response.verdict.crashed())
        .count();
    let quarantined = report
        .sessions
        .iter()
        .filter(|r| r.response.verdict == SessionVerdict::Shed(ShedReason::Quarantined))
        .count();
    assert_eq!(crashed, 2, "exactly quarantine_after crashes run");
    assert_eq!(quarantined, 3, "the rest of the poison profile sheds");
    assert_eq!(report.metrics.counter("server.profile.quarantines"), 1);
    assert!(
        report
            .sessions
            .iter()
            .filter(|r| scenario
                .requests
                .iter()
                .any(|q| q.request_id == r.response.request_id && q.user_id == 1))
            .all(|r| !r.response.verdict.crashed() && !r.response.verdict.shed()),
        "the healthy profile is untouched by its neighbour's quarantine"
    );
}

#[test]
fn transient_aborts_retry_with_backoff_and_hard_outcomes_do_not() {
    // `hang_every: 1` makes every session deliver nothing: a transient
    // Abort, which the retry layer must re-run (and event-log) before
    // giving up.
    let scenario = build_fleet(&FleetConfig {
        num_devices: 2,
        sessions_per_device: 2,
        enrolled_users: 2,
        seed: 5,
        chaos: false,
        hang_every: 1,
    });
    let server = ServerConfig {
        num_workers: 1,
        queue_capacity: 4,
        retry: RetryPolicy {
            max_retries: 2,
            // A hang session burns its full watchdog budget (~90s of
            // session clock) per run; leave room for both retries.
            session_deadline_s: 1.0e6,
            ..RetryPolicy::default()
        },
        ..ServerConfig::default()
    };
    let (report, _) = run_fleet_obs(&scenario, &server, ServeObs::default());
    let total = scenario.requests.len() as u64;
    assert_eq!(
        report.metrics.counter("server.session.retries"),
        2 * total,
        "every abort session burns its full retry budget"
    );
    for r in &report.sessions {
        let retries = r
            .log
            .events
            .iter()
            .filter(|e| matches!(&e.event, SessionEvent::Fault { kind, .. } if kind == "retry"))
            .count();
        assert_eq!(retries, 2, "each retry is event-logged with its backoff");
    }

    // Deadline-awareness: a session budget too small for the first
    // backoff means zero retries.
    let tight = ServerConfig {
        retry: RetryPolicy {
            max_retries: 2,
            session_deadline_s: 0.001,
            ..RetryPolicy::default()
        },
        ..server
    };
    let (report, _) = run_fleet_obs(&scenario, &tight, ServeObs::default());
    assert_eq!(
        report.metrics.counter("server.session.retries"),
        0,
        "no retry fits inside the session deadline"
    );
}

#[test]
fn clock_skew_injection_never_hangs_or_crashes_sessions() {
    let scenario = build_fleet(&fleet(2));
    let total = scenario.requests.len();
    let plan = ChaosPlan::default().with_clock_skew(ClockSkew {
        every: 3,
        backwards_s: 50.0,
    });
    let server = ServerConfig {
        num_workers: 2,
        queue_capacity: 4,
        ..ServerConfig::default()
    };
    let (report, shed) = run_fleet_obs(
        &scenario,
        &server,
        ServeObs {
            chaos: Some(&plan),
            ..ServeObs::default()
        },
    );
    assert_eq!(report.sessions.len() + shed.len(), total);
    assert!(report
        .sessions
        .iter()
        .all(|r| !r.response.verdict.crashed()));
    let skews = report.metrics.counter("server.chaos.clock_skews");
    assert!(skews > 0, "the skew injector actually fired ({skews})");
}

#[test]
fn kill_restart_recovers_accounting_bit_identically() {
    for seed in 1..=3_u64 {
        let scenario = build_fleet(&fleet(seed));
        let total = scenario.requests.len();
        let server = ServerConfig {
            num_workers: 2,
            queue_capacity: 4,
            ..ServerConfig::default()
        };
        let dir = scratch_dir(&format!("kill_seed{seed}"));
        let kr = kill_restart_cycle(&scenario, &server, &dir, total / 2);
        assert_eq!(
            kr.final_completed, total as u64,
            "seed {seed}: every request completes exactly once across the crash"
        );
        assert_eq!(
            kr.interrupted_journaled, kr.in_flight,
            "seed {seed}: each interrupted session gets its marker"
        );

        // Bit-identical accounting: an independent recovery of the
        // same shards reproduces the digest exactly.
        let again = ServeRegion::recover(&dir).expect("re-recover");
        assert_eq!(
            again.accounting_digest(),
            kr.final_digest,
            "seed {seed}: recovery is deterministic"
        );
        let ids: BTreeSet<u64> = scenario.requests.iter().map(|r| r.request_id).collect();
        let recovered: BTreeSet<u64> = again.completed_verdicts.keys().copied().collect();
        assert_eq!(
            recovered, ids,
            "seed {seed}: accounting covers every request"
        );
        assert!(
            again.in_flight.is_empty(),
            "seed {seed}: nothing left in flight"
        );
        assert_eq!(
            again.prior_interruptions as usize, kr.in_flight,
            "seed {seed}: the restart itself is on the record"
        );

        // The same verification `replay --verify` runs: every record
        // decodes and re-encodes to its own bytes.
        for (path, read) in persist::read_store_dir(&dir).expect("list store") {
            let read = read.unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(read.torn_bytes, 0, "seed {seed}: tails were repaired");
            for payload in &read.records {
                let text = std::str::from_utf8(payload).expect("utf8 payload");
                let log = EventLog::decode(text).expect("decodable record");
                assert_eq!(
                    log.encode().as_bytes(),
                    payload.as_slice(),
                    "seed {seed}: record re-encodes bit-identically"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn mid_file_corruption_is_contained_to_its_shard() {
    let scenario = build_fleet(&fleet(1));
    let server = ServerConfig {
        num_workers: 2,
        queue_capacity: 4,
        journal_intents: true,
        ..ServerConfig::default()
    };
    let dir = scratch_dir("corrupt");
    let store =
        p2auth_obs::ShardedEventStore::create(&dir, server.shard_count, 1).expect("create store");
    run_fleet_obs(
        &scenario,
        &server,
        ServeObs {
            persist: Some(&store),
            ..ServeObs::default()
        },
    );
    store.flush().expect("flush");
    drop(store);
    // Find a shard with records and corrupt it mid-file.
    let mut corrupted = None;
    for idx in 0..server.shard_count {
        if p2auth_server::chaos::corrupt_shard_record(&dir, idx).expect("corrupt") {
            corrupted = Some(dir.join(persist::shard_file_name(idx)));
            break;
        }
    }
    let corrupted = corrupted.expect("some shard has records");
    let region = ServeRegion::recover(&dir).expect("recover survives corruption");
    assert_eq!(
        region.failed_shards.len(),
        1,
        "exactly the corrupted shard fails"
    );
    assert_eq!(region.failed_shards[0].0, corrupted);
    assert!(
        region.completed.sessions > 0,
        "healthy sibling shards still recover their sessions"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn brownout_ladder_degrades_and_sheds_under_burn() {
    // Pre-burn the SLO tracker so the ladder sees a hot error window
    // from the first session, with hair-trigger hysteresis: the region
    // must climb Normal → … → Shed while serving.
    let scenario = build_fleet(&FleetConfig {
        num_devices: 3,
        sessions_per_device: 4,
        enrolled_users: 2,
        seed: 7,
        chaos: false,
        hang_every: 0,
    });
    let server = ServerConfig {
        num_workers: 1,
        queue_capacity: 4,
        brownout: p2auth_server::BrownoutConfig {
            enabled: true,
            eval_every: 1,
            up_hold: 1,
            down_hold: 1000,
            pin_only_min_coverage: 0.5,
        },
        ..ServerConfig::default()
    };
    let slo = p2auth_obs::SloTracker::new(p2auth_obs::SloConfig {
        error_budget: 0.01,
        fast_burn_threshold: 2.0,
        slow_burn_threshold: 0.1,
        ..p2auth_obs::SloConfig::default()
    });
    for _ in 0..200 {
        slo.record(1_000_000, true);
    }
    let (report, _) = run_fleet_obs(
        &scenario,
        &server,
        ServeObs {
            slo: Some(&slo),
            ..ServeObs::default()
        },
    );
    assert!(
        !report.ladder_transitions.is_empty(),
        "the ladder moved under sustained burn"
    );
    for w in report.ladder_transitions.windows(2) {
        assert_eq!(w[0].to, w[1].from, "transitions are one rung at a time");
    }
    let occupancy: u64 = report.ladder_occupancy.iter().sum();
    assert_eq!(
        occupancy,
        report.sessions.len() as u64,
        "eval_every=1: one ladder evaluation per admitted session"
    );
    let shed_brownout = report
        .sessions
        .iter()
        .filter(|r| r.response.verdict == SessionVerdict::Shed(ShedReason::Brownout))
        .count();
    let pin_only = report
        .sessions
        .iter()
        .filter(|r| {
            r.log
                .events
                .iter()
                .any(|e| matches!(&e.event, SessionEvent::Fault { kind, .. } if kind == "brownout"))
        })
        .count();
    assert!(
        shed_brownout > 0 || pin_only > 0,
        "degraded tiers actually served: {shed_brownout} shed, {pin_only} pin-only"
    );
}
