//! Durable-persistence integration suite: a serve region run with a
//! [`ShardedEventStore`] attached must leave a store that replays
//! **bit-identically** — every persisted record decodes to an event
//! log whose `first_divergence` against the worker's in-memory log is
//! `None`, under chaos (seeds 1–3) no less. Alongside it, the merged
//! per-worker metrics must agree exactly with the session outcomes
//! they summarize: observability that disagrees with the ground truth
//! is worse than none.

use std::collections::BTreeMap;
use std::path::PathBuf;

use p2auth_obs::{persist, EventLog, ShardedEventStore, SloConfig, SloTracker};
use p2auth_server::{
    build_fleet, run_fleet_obs, FleetConfig, ServeObs, ServerConfig, SessionVerdict,
};

fn fleet(seed: u64) -> FleetConfig {
    FleetConfig {
        num_devices: 4,
        sessions_per_device: 2,
        enrolled_users: 2,
        seed,
        chaos: true,
        hang_every: 0,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "p2auth_server_persistence_{tag}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn persisted_logs_replay_bit_identically_under_chaos() {
    for seed in 1..=3_u64 {
        let scenario = build_fleet(&fleet(seed));
        let server = ServerConfig {
            num_workers: 3,
            queue_capacity: 8,
            ..ServerConfig::default()
        };
        let dir = scratch_dir(&format!("seed{seed}"));
        let store = ShardedEventStore::create(&dir, server.shard_count, 2).expect("create store");
        let (report, shed) = run_fleet_obs(
            &scenario,
            &server,
            ServeObs {
                persist: Some(&store),
                ..ServeObs::default()
            },
        );
        assert!(shed.is_empty(), "blocking submission never sheds at submit");
        store.flush().expect("flush");
        assert_eq!(store.appended(), report.sessions.len() as u64);

        let in_memory: BTreeMap<u64, &EventLog> = report
            .sessions
            .iter()
            .map(|r| (r.response.request_id, &r.log))
            .collect();
        let mut replayed = 0_usize;
        for (path, read) in persist::read_store_dir(&dir).expect("list store") {
            let read = read.unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(read.torn_bytes, 0, "flushed store has no torn tail");
            for payload in &read.records {
                let text = std::str::from_utf8(payload).expect("utf8 payload");
                let log = EventLog::decode(text).expect("decodable payload");
                let request_id: u64 = log
                    .meta_get("request_id")
                    .and_then(|v| v.parse().ok())
                    .expect("request_id metadata");
                let user_id: u64 = log
                    .meta_get("user_id")
                    .and_then(|v| v.parse().ok())
                    .expect("user_id metadata");
                assert_eq!(
                    read.shard_idx as usize,
                    persist::shard_of(user_id, server.shard_count),
                    "seed {seed}: request {request_id} persisted outside its user's shard"
                );
                let original = in_memory
                    .get(&request_id)
                    .unwrap_or_else(|| panic!("request {request_id} was never served"));
                assert!(
                    original.first_divergence(&log).is_none(),
                    "seed {seed}: request {request_id} diverged after persistence"
                );
                assert_eq!(
                    original.encode().as_bytes(),
                    payload.as_slice(),
                    "seed {seed}: request {request_id} not byte-identical on disk"
                );
                replayed += 1;
            }
        }
        assert_eq!(
            replayed,
            report.sessions.len(),
            "seed {seed}: every served session must be persisted exactly once"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn merged_worker_metrics_agree_with_session_outcomes() {
    let scenario = build_fleet(&fleet(2));
    let server = ServerConfig {
        num_workers: 3,
        queue_capacity: 8,
        ..ServerConfig::default()
    };
    let slo = SloTracker::new(SloConfig::default());
    let (report, _) = run_fleet_obs(
        &scenario,
        &server,
        ServeObs {
            slo: Some(&slo),
            ..ServeObs::default()
        },
    );

    let mut accepts = 0_u64;
    let mut aborts = 0_u64;
    let mut completed = 0_u64;
    for r in &report.sessions {
        match &r.response.verdict {
            SessionVerdict::Completed {
                accepted, state, ..
            } => {
                completed += 1;
                if *accepted {
                    accepts += 1;
                }
                if *state == p2auth_device::SupervisorState::Abort {
                    aborts += 1;
                }
            }
            SessionVerdict::Shed(_) => {}
            SessionVerdict::Crashed { reason } => {
                panic!("no chaos plan is set, nothing may crash: {reason}")
            }
        }
    }

    // The merged registry is the sum of the per-worker locals...
    let mut remerged = p2auth_obs::MetricsLocal::new();
    for local in &report.worker_metrics {
        remerged.merge(local);
    }
    assert_eq!(remerged, report.metrics, "merge must be associative");
    assert_eq!(
        report.worker_metrics.len(),
        server.num_workers,
        "one local registry per worker"
    );

    // ...and the sums agree exactly with the ground-truth outcomes.
    let m = &report.metrics;
    assert_eq!(m.counter("server.session.accepts"), accepts);
    assert_eq!(m.counter("server.session.aborts"), aborts);
    assert_eq!(
        m.counter("server.session.non_accepts"),
        completed - accepts,
        "non-accepts = rejections + aborts"
    );
    let latency = m
        .histogram("server.session.latency_ns")
        .expect("completion latency histogram");
    let aborted = m
        .histogram("server.session.latency.aborted_ns")
        .map_or(0, p2auth_obs::LocalHistogram::count);
    assert_eq!(
        latency.count() + aborted,
        completed,
        "every completed session lands in exactly one outcome histogram"
    );
    // Per-shard session counts roll up to the total.
    let shard_total: u64 = (0..server.shard_count)
        .map(|s| m.counter(&format!("server.shard.{s:02}.sessions")))
        .sum();
    assert_eq!(shard_total, report.sessions.len() as u64);
    // The SLO tracker saw the same population.
    let slo_report = slo.report();
    assert_eq!(slo_report.total, report.sessions.len() as u64);
    assert_eq!(slo_report.errors, aborts, "chaos errors = aborted sessions");
}
