//! Accelerometer synthesis (the LIS2DH12 of the prototype, 75 Hz).
//!
//! The paper's Fig. 12 compares PPG-based authentication against the
//! same pipeline run on accelerometer data and finds the accelerometer
//! weaker: "the volunteer stays relatively stable during key presses
//! with little wrist movement, so the accelerometer data does not
//! change significantly". We model exactly that: keystrokes leave only
//! small, largely subject-overlapping transients on top of gravity and
//! tremor noise.

use crate::rng::normal;
use crate::subject::Subject;
use p2auth_core::types::AccelTrack;
use rand::rngs::StdRng;
use rand::Rng;

/// Synthesizes a 3-axis accelerometer track of `duration_s` seconds at
/// `rate` Hz, with keystroke touches at `touch_times_s` (watch-hand
/// keystrokes only).
pub fn accel_track(
    subject: &Subject,
    duration_s: f64,
    rate: f64,
    touch_times_s: &[f64],
    rng: &mut StdRng,
) -> AccelTrack {
    let n = (duration_s * rate).round() as usize;
    let gravity = [0.12, -0.07, 9.81];
    let mut axes = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
    for (a, axis) in axes.iter_mut().enumerate() {
        for v in axis.iter_mut() {
            *v = gravity[a] + normal(rng, 0.0, 0.02);
        }
    }
    for &t0 in touch_times_s {
        // A small per-event transient shaped by the subject's habitual
        // (but heavily overlapping) micro-motion parameters.
        let amp = subject.accel_artifact_scale * rng.gen_range(0.8..1.2);
        let freq = subject.accel_freq_hz * rng.gen_range(0.95..1.05);
        let damping = subject.accel_damping;
        let mix = subject.accel_mix;
        let start = (t0 * rate).max(0.0) as usize;
        let end = (((t0 + 0.4) * rate) as usize).min(n);
        for (a, axis) in axes.iter_mut().enumerate() {
            for (i, v) in axis.iter_mut().enumerate().take(end).skip(start) {
                let dt = i as f64 / rate - t0;
                if dt >= 0.0 {
                    *v += amp
                        * mix[a]
                        * (-damping * dt).exp()
                        * (std::f64::consts::TAU * freq * dt).sin();
                }
            }
        }
    }
    AccelTrack {
        sample_rate: rate,
        axes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;

    #[test]
    fn gravity_dominates() {
        let s = Subject::sample(1, 0);
        let track = accel_track(&s, 5.0, 75.0, &[1.0, 2.0], &mut rng_for(1, &[]));
        let z_mean: f64 = track.axes[2].iter().sum::<f64>() / track.axes[2].len() as f64;
        assert!((z_mean - 9.81).abs() < 0.1, "z mean {z_mean}");
    }

    #[test]
    fn keystroke_transients_are_small() {
        let s = Subject::sample(1, 1);
        let quiet = accel_track(&s, 5.0, 75.0, &[], &mut rng_for(2, &[]));
        let typed = accel_track(&s, 5.0, 75.0, &[1.0, 2.0, 3.0, 4.0], &mut rng_for(2, &[]));
        // The transient adds x-axis variance but stays far below gravity.
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&typed.axes[0]) >= var(&quiet.axes[0]));
        let peak = typed.axes[0]
            .iter()
            .map(|v| (v - 0.12).abs())
            .fold(0.0, f64::max);
        assert!(peak < 1.0, "keystroke accel transient too large: {peak}");
    }

    #[test]
    fn track_lengths_match_rate() {
        let s = Subject::sample(1, 2);
        let track = accel_track(&s, 6.0, 75.0, &[], &mut rng_for(3, &[]));
        assert_eq!(track.axes[0].len(), 450);
        assert_eq!(track.axes[1].len(), track.axes[2].len());
    }
}
