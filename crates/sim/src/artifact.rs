//! Keystroke-induced artifact synthesis.
//!
//! A keystroke contracts wrist muscles and deforms the microvascular
//! bed, producing (paper §III-B) "more pronounced peaks or troughs in
//! the PPG measurements relative to the heartbeat". We model one
//! keystroke as the sum of
//!
//! * a **damped oscillation** — the muscle/tendon transient, whose
//!   amplitude, frequency, damping and phase are subject- and
//!   key-specific, and
//! * a **slower negative pressure lobe** — blood squeezed out of the
//!   tissue under the band, recovering over ~0.2 s.
//!
//! Channel coupling (placement × wavelength × key position) scales the
//! whole template; per-event jitter models behavioural variation.

use crate::channel::artifact_coupling;
use crate::rng::normal;
use crate::subject::Subject;
use p2auth_core::types::ChannelInfo;
use rand::rngs::StdRng;

/// Per-event variation of one keystroke (drawn once per keystroke, then
/// applied to every channel so channels stay physically consistent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventJitter {
    /// Multiplicative amplitude jitter.
    pub amp: f64,
    /// Multiplicative frequency jitter.
    pub freq: f64,
    /// Additive latency jitter (seconds).
    pub latency_s: f64,
}

impl EventJitter {
    /// Draws the jitter for one keystroke from the subject's stability.
    pub fn draw(subject: &Subject, rng: &mut StdRng) -> Self {
        let s = subject.stability_sigma;
        Self {
            amp: normal(rng, 0.0, s).exp(),
            freq: (1.0 + normal(rng, 0.0, 0.02 + s / 5.0)).clamp(0.7, 1.3),
            latency_s: normal(rng, 0.0, 0.006 + s / 50.0),
        }
    }

    /// No jitter (for template inspection and tests).
    pub fn none() -> Self {
        Self {
            amp: 1.0,
            freq: 1.0,
            latency_s: 0.0,
        }
    }
}

/// Duration of one artifact template in seconds.
pub const ARTIFACT_DURATION_S: f64 = 0.7;

/// Adds the artifact of `subject` tapping `digit` into `out`, for the
/// channel described by `info`, with onset at `touch_time_s`.
///
/// The artifact begins `subject.artifact_latency_s + key.latency_s +
/// jitter.latency_s` after the touch.
///
/// # Panics
///
/// Panics if `digit > 9`.
pub fn add_keystroke_artifact(
    subject: &Subject,
    digit: u8,
    info: ChannelInfo,
    out: &mut [f64],
    rate: f64,
    touch_time_s: f64,
    jitter: &EventJitter,
) {
    add_keystroke_artifact_scaled(subject, digit, info, out, rate, touch_time_s, jitter, 1.0);
}

/// [`add_keystroke_artifact`] with an extra amplitude factor — the
/// per-module contact-pressure jitter of the session synthesizer.
/// Modules jitter independently, which is what makes multi-channel
/// layouts informative beyond a single good channel.
#[allow(clippy::too_many_arguments)]
pub fn add_keystroke_artifact_scaled(
    subject: &Subject,
    digit: u8,
    info: ChannelInfo,
    out: &mut [f64],
    rate: f64,
    touch_time_s: f64,
    jitter: &EventJitter,
    amp_scale: f64,
) {
    let key = subject.key_response(digit);
    let onset = touch_time_s + subject.artifact_latency_s + key.latency_s + jitter.latency_s;
    let coupling = artifact_coupling(info, digit);
    let amp = subject.artifact_gain * key.gain * coupling * jitter.amp * amp_scale;
    let freq = subject.artifact_freq_hz * key.freq_mod * jitter.freq;
    let damping = subject.artifact_damping * key.damping_mod;
    let lobe_amp = key.second_lobe * amp;
    let lobe_delay = key.second_delay_s;
    let lobe_width = 0.07;
    let start = ((onset * rate).floor().max(0.0)) as usize;
    let end = (((onset + ARTIFACT_DURATION_S) * rate).ceil() as usize).min(out.len());
    for (i, o) in out.iter_mut().enumerate().take(end).skip(start) {
        let t = i as f64 / rate - onset;
        if t < 0.0 {
            continue;
        }
        let osc = amp * (-damping * t).exp() * (std::f64::consts::TAU * freq * t + key.phase).sin();
        let dl = (t - lobe_delay) / lobe_width;
        let lobe = lobe_amp * (-0.5 * dl * dl).exp();
        // Smooth onset ramp (~20 ms) so the artifact does not start with
        // a discontinuity.
        let ramp = (t / 0.02).min(1.0);
        *o += ramp * (osc + lobe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::standard_layout;
    use crate::rng::rng_for;

    fn subject() -> Subject {
        Subject::sample(21, 0)
    }

    fn template(subject: &Subject, digit: u8, info: ChannelInfo) -> Vec<f64> {
        let mut out = vec![0.0; 200];
        add_keystroke_artifact(
            subject,
            digit,
            info,
            &mut out,
            100.0,
            0.3,
            &EventJitter::none(),
        );
        out
    }

    #[test]
    fn artifact_is_localized_after_onset() {
        let s = subject();
        let x = template(&s, 5, standard_layout(1)[0]);
        // Nothing before the touch.
        assert!(x[..30].iter().all(|&v| v == 0.0));
        // Strong response within the artifact window.
        let peak = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!(
            peak > s.sys_amp,
            "artifact ({peak}) should exceed pulse amplitude"
        );
        // Decayed by the end.
        assert!(x[150..].iter().all(|&v| v.abs() < 0.2 * peak));
    }

    #[test]
    fn different_keys_produce_different_shapes() {
        let s = subject();
        let info = standard_layout(1)[0];
        let a = template(&s, 1, info);
        let b = template(&s, 9, info);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "keys too similar: {diff}");
    }

    #[test]
    fn different_subjects_produce_different_shapes() {
        let s1 = Subject::sample(21, 0);
        let s2 = Subject::sample(21, 1);
        let info = standard_layout(1)[0];
        let a = template(&s1, 5, info);
        let b = template(&s2, 5, info);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "subjects too similar: {diff}");
    }

    #[test]
    fn channels_scale_consistently() {
        let s = subject();
        let layout = standard_layout(4);
        // Same event on IR vs red of the same module: red is a scaled
        // copy (same underlying motion).
        let ir = template(&s, 5, layout[0]);
        let red = template(&s, 5, layout[1]);
        let ratio = artifact_coupling(layout[1], 5) / artifact_coupling(layout[0], 5);
        for (a, b) in ir.iter().zip(&red) {
            assert!((b - ratio * a).abs() < 1e-9);
        }
    }

    #[test]
    fn jitter_perturbs_but_preserves_shape() {
        let s = subject();
        let info = standard_layout(1)[0];
        let clean = template(&s, 5, info);
        let mut rng = rng_for(3, &[7]);
        let j = EventJitter::draw(&s, &mut rng);
        let mut noisy = vec![0.0; 200];
        add_keystroke_artifact(&s, 5, info, &mut noisy, 100.0, 0.3, &j);
        // Correlated with the clean template.
        let dot: f64 = clean.iter().zip(&noisy).map(|(a, b)| a * b).sum();
        let n1: f64 = clean.iter().map(|v| v * v).sum::<f64>().sqrt();
        let n2: f64 = noisy.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(dot / (n1 * n2) > 0.5, "correlation {}", dot / (n1 * n2));
    }

    #[test]
    fn event_jitter_determinism() {
        let s = subject();
        let a = EventJitter::draw(&s, &mut rng_for(5, &[1]));
        let b = EventJitter::draw(&s, &mut rng_for(5, &[1]));
        assert_eq!(a, b);
    }
}
