//! Cardiac pulse-train synthesis.
//!
//! Each heartbeat contributes a systolic lobe and a delayed dicrotic
//! (reflected-wave) lobe, both Gaussian; beat periods jitter with the
//! subject's heart-rate variability and the amplitude is modulated by
//! respiration. This is the "background" signal the keystroke artifacts
//! ride on.

use crate::rng::normal;
use crate::subject::Subject;
use rand::rngs::StdRng;
use rand::Rng;

/// Synthesizes `n` samples of the subject's pulse waveform at `rate` Hz
/// with unit channel gain (callers scale per channel).
pub fn pulse_train(subject: &Subject, n: usize, rate: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut out = vec![0.0_f64; n];
    let duration = n as f64 / rate;
    let resp_phase = rng.gen_range(0.0..std::f64::consts::TAU);
    // Generate beat onset times covering the whole window (starting
    // before zero so the first beat's tail is present).
    let mut beats = Vec::new();
    let mut t = -rng.gen_range(0.0..1.0 / subject.heart_rate_hz);
    while t < duration + 0.5 {
        beats.push(t);
        let period =
            (1.0 / subject.heart_rate_hz) * (1.0 + normal(rng, 0.0, subject.hrv_sigma)).max(0.5);
        t += period;
    }
    for &tb in &beats {
        add_beat(subject, &mut out, rate, tb, resp_phase);
    }
    out
}

fn add_beat(subject: &Subject, out: &mut [f64], rate: f64, tb: f64, resp_phase: f64) {
    let resp = 1.0
        + subject.resp_amp * (std::f64::consts::TAU * subject.resp_freq_hz * tb + resp_phase).sin();
    let sys_amp = subject.sys_amp * resp;
    let dic_amp = subject.dic_amp * resp;
    // Only touch samples within ±4 widths of the lobes.
    let span = subject.dic_delay_s + 4.0 * (subject.sys_width_s + subject.dic_width_s);
    let lo = (((tb - span) * rate).floor().max(0.0)) as usize;
    let hi = (((tb + span) * rate).ceil() as usize).min(out.len());
    for (i, o) in out.iter_mut().enumerate().take(hi).skip(lo) {
        let t = i as f64 / rate;
        let ds = (t - tb) / subject.sys_width_s;
        let dd = (t - tb - subject.dic_delay_s) / subject.dic_width_s;
        *o += sys_amp * (-0.5 * ds * ds).exp() + dic_amp * (-0.5 * dd * dd).exp();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;
    use p2auth_dsp::stats::autocorrelation;

    #[test]
    fn periodicity_matches_heart_rate() {
        let s = Subject {
            hrv_sigma: 0.001,
            heart_rate_hz: 1.25,
            ..Subject::sample(5, 0)
        };
        let rate = 100.0;
        let mut rng = rng_for(1, &[]);
        let x = pulse_train(&s, 1000, rate, &mut rng);
        // Autocorrelation peaks near the beat period lag (80 samples).
        let lag = (rate / s.heart_rate_hz).round() as usize;
        assert!(
            autocorrelation(&x, lag) > 0.5,
            "ac {}",
            autocorrelation(&x, lag)
        );
    }

    #[test]
    fn amplitude_bounded_by_morphology() {
        let s = Subject::sample(5, 1);
        let mut rng = rng_for(2, &[]);
        let x = pulse_train(&s, 800, 100.0, &mut rng);
        let max = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        // One beat's lobes plus a tail of the previous beat and full
        // respiratory swing stay well under 2 systolic amplitudes.
        assert!(max < 2.0 * (s.sys_amp + s.dic_amp), "max {max}");
        assert!(max > 0.5 * s.sys_amp, "pulse absent, max {max}");
    }

    #[test]
    fn covers_whole_window() {
        let s = Subject::sample(5, 2);
        let mut rng = rng_for(3, &[]);
        let x = pulse_train(&s, 700, 100.0, &mut rng);
        // There must be pulse energy in the first and last second.
        let head: f64 = x[..100].iter().map(|v| v * v).sum();
        let tail: f64 = x[600..].iter().map(|v| v * v).sum();
        assert!(head > 0.1 && tail > 0.1);
    }

    #[test]
    fn deterministic_with_same_rng_seed() {
        let s = Subject::sample(5, 3);
        let a = pulse_train(&s, 300, 100.0, &mut rng_for(9, &[1]));
        let b = pulse_train(&s, 300, 100.0, &mut rng_for(9, &[1]));
        assert_eq!(a, b);
    }
}
