//! Optical channel model: how wavelength and placement shape what a
//! channel sees.
//!
//! * **Infrared** penetrates deeper, capturing vascular/muscle motion
//!   strongly (better authentication accuracy — paper Fig. 13b);
//!   **red** is shallower and noisier but complementary.
//! * **Radial** vs **ulnar** placement couples differently to keystrokes
//!   depending on where the key sits on the pad (thumb-extension angle).
//! * The paper found **dorsal** (back-of-hand) placement less stable
//!   (§VI); we model that as weaker, noisier coupling.

use crate::layout::key_position;
use p2auth_core::types::{ChannelInfo, Placement, Wavelength};

/// Relative cardiac-pulse amplitude seen by a channel.
pub fn pulse_amplitude(info: ChannelInfo) -> f64 {
    let wl = match info.wavelength {
        Wavelength::Infrared => 1.0,
        Wavelength::Red => 0.75,
        Wavelength::Green => 1.0,
    };
    let pl = match info.placement {
        Placement::Radial => 1.0,
        Placement::Ulnar => 0.92,
        Placement::Dorsal => 0.55,
    };
    wl * pl
}

/// Relative coupling of a keystroke artifact on key `digit` into a
/// channel. Key position steers the radial/ulnar balance.
///
/// # Panics
///
/// Panics if `digit > 9`.
pub fn artifact_coupling(info: ChannelInfo, digit: u8) -> f64 {
    let (x, y) = key_position(digit);
    let pl = match info.placement {
        Placement::Radial => 0.55 + 0.50 * (1.0 - x),
        Placement::Ulnar => 0.55 + 0.50 * x,
        Placement::Dorsal => 0.45 + 0.30 * y,
    };
    // Artifact-to-pulse contrast drives per-channel accuracy: infrared
    // reaches the deep vasculature the keystroke deforms (ratio 1.0),
    // red is shallow and sees proportionally less artifact than pulse
    // (0.55/0.62 < 1), green sits between.
    let wl = match info.wavelength {
        Wavelength::Infrared => 1.0,
        Wavelength::Red => 0.72,
        Wavelength::Green => 0.88,
    };
    pl * wl
}

/// White-noise standard deviation of a channel (red LEDs are more
/// sensitive to ambient light).
pub fn noise_sigma(info: ChannelInfo) -> f64 {
    let wl = match info.wavelength {
        Wavelength::Infrared => 0.040,
        Wavelength::Red => 0.085,
        Wavelength::Green => 0.038,
    };
    let pl = match info.placement {
        Placement::Radial | Placement::Ulnar => 1.0,
        Placement::Dorsal => 1.5,
    };
    wl * pl
}

/// The prototype's channel layout, extended as in the paper's
/// channel-count sweep (Fig. 13a, 1–6 channels): two MAX30101 modules
/// (radial + ulnar), each with infrared and red LEDs, plus green LEDs
/// for counts above four (commercial watches like the Apple Watch pair
/// green with infrared).
///
/// # Panics
///
/// Panics if `n` is zero or greater than 6.
pub fn standard_layout(n: usize) -> Vec<ChannelInfo> {
    assert!(
        (1..=6).contains(&n),
        "supported channel counts are 1-6, got {n}"
    );
    // Sweep order: infrared on both modules first (adding the second
    // module is the biggest win — radial and ulnar placements see
    // complementary keys), then the red LEDs, then green.
    let all = [
        ChannelInfo {
            wavelength: Wavelength::Infrared,
            placement: Placement::Radial,
        },
        ChannelInfo {
            wavelength: Wavelength::Infrared,
            placement: Placement::Ulnar,
        },
        ChannelInfo {
            wavelength: Wavelength::Red,
            placement: Placement::Radial,
        },
        ChannelInfo {
            wavelength: Wavelength::Red,
            placement: Placement::Ulnar,
        },
        ChannelInfo {
            wavelength: Wavelength::Green,
            placement: Placement::Radial,
        },
        ChannelInfo {
            wavelength: Wavelength::Green,
            placement: Placement::Ulnar,
        },
    ];
    all[..n].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ir_radial() -> ChannelInfo {
        ChannelInfo {
            wavelength: Wavelength::Infrared,
            placement: Placement::Radial,
        }
    }

    fn red_radial() -> ChannelInfo {
        ChannelInfo {
            wavelength: Wavelength::Red,
            placement: Placement::Radial,
        }
    }

    #[test]
    fn infrared_sees_more_pulse_and_artifact() {
        assert!(pulse_amplitude(ir_radial()) > pulse_amplitude(red_radial()));
        assert!(artifact_coupling(ir_radial(), 5) > artifact_coupling(red_radial(), 5));
    }

    #[test]
    fn red_is_noisier() {
        assert!(noise_sigma(red_radial()) > noise_sigma(ir_radial()));
    }

    #[test]
    fn key_position_steers_placement_balance() {
        let radial = ir_radial();
        let ulnar = ChannelInfo {
            wavelength: Wavelength::Infrared,
            placement: Placement::Ulnar,
        };
        // Key 1 (left column) couples more radially; key 3 more ulnarly.
        assert!(artifact_coupling(radial, 1) > artifact_coupling(ulnar, 1));
        assert!(artifact_coupling(ulnar, 3) > artifact_coupling(radial, 3));
    }

    #[test]
    fn layout_sizes() {
        assert_eq!(standard_layout(1).len(), 1);
        assert_eq!(standard_layout(4).len(), 4);
        assert_eq!(standard_layout(6).len(), 6);
        // The first four cover the paper prototype: 2 modules x (IR + red),
        // infrared pair first.
        let four = standard_layout(4);
        assert_eq!(four[0].placement, Placement::Radial);
        assert_eq!(four[1].placement, Placement::Ulnar);
        assert_eq!(four[2].wavelength, Wavelength::Red);
    }

    #[test]
    #[should_panic(expected = "supported channel counts")]
    fn bad_layout_size_panics() {
        standard_layout(7);
    }
}
