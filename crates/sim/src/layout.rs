//! PIN-pad geometry.
//!
//! The standard phone PIN pad:
//!
//! ```text
//! 1 2 3
//! 4 5 6
//! 7 8 9
//!   0
//! ```
//!
//! Key position drives the thumb-extension angle, which modulates which
//! wrist muscles move and therefore how strongly each sensor placement
//! couples to the keystroke artifact (the mechanism behind the paper's
//! Fig. 3 per-key differences).

/// Normalized `(x, y)` position of a digit key on the PIN pad;
/// `x` runs left→right in `[0, 1]`, `y` top→bottom in `[0, 1]`.
///
/// # Panics
///
/// Panics if `digit > 9`.
pub fn key_position(digit: u8) -> (f64, f64) {
    assert!(digit <= 9, "digit {digit} out of range");
    if digit == 0 {
        return (0.5, 1.0);
    }
    let idx = digit - 1;
    let col = (idx % 3) as f64;
    let row = (idx / 3) as f64;
    (col / 2.0, row / 3.0)
}

/// Default two-handed split: in two-handed typing, the hand wearing the
/// watch (the left, in the paper's prototype — the band was worn on the
/// left wrist) presses the keys on its side of the pad. Returns true if
/// the watch hand presses `digit` for a subject whose watch-side
/// boundary is `boundary` (the `x` below which the watch hand reaches).
///
/// # Panics
///
/// Panics if `digit > 9`.
pub fn watch_hand_presses(digit: u8, boundary: f64) -> bool {
    key_position(digit).0 < boundary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners() {
        assert_eq!(key_position(1), (0.0, 0.0));
        assert_eq!(key_position(3), (1.0, 0.0));
        assert_eq!(key_position(7), (0.0, 2.0 / 3.0));
        assert_eq!(key_position(9), (1.0, 2.0 / 3.0));
        assert_eq!(key_position(0), (0.5, 1.0));
    }

    #[test]
    fn all_digits_in_unit_square() {
        for d in 0..=9 {
            let (x, y) = key_position(d);
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn split_boundary() {
        // Boundary 0.6: left and middle columns belong to the watch hand.
        let watch: Vec<u8> = (0..=9).filter(|&d| watch_hand_presses(d, 0.6)).collect();
        assert_eq!(watch, vec![0, 1, 2, 4, 5, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_digit_panics() {
        key_position(10);
    }
}
