//! Physiologically grounded PPG / keystroke simulator.
//!
//! The P²Auth paper evaluates on a custom wearable prototype (two
//! MAX30101 PPG modules + a LIS2DH12 accelerometer on a wrist band) worn
//! by 15 volunteers. Neither the hardware nor the human subjects are
//! available to a reproduction, so this crate synthesizes the same
//! signals from a generative model that preserves the two statistical
//! properties the paper's feasibility study (§III) establishes:
//!
//! 1. **Inter-user separability** — "the same keystroke-induced PPG
//!    measurements from different users are always highly different";
//!    each simulated [`Subject`] carries its own pulse morphology and
//!    keystroke-artifact physiology (gain, oscillation frequency,
//!    damping, latency, per-key response).
//! 2. **Intra-user, inter-key structure** — "the PPG patterns of the
//!    same user are different when tapping different keys"; each key of
//!    the PIN pad modulates the artifact through the subject's per-key
//!    response and through key-position-dependent channel coupling
//!    (radial vs ulnar placement, red vs infrared wavelength).
//!
//! On top sit the nuisance processes the pipeline must survive: heart-
//! rate variability, respiration-coupled baseline drift, sensor noise,
//! spurious wrist motions for "unstable" subjects (the paper's
//! volunteer 11), and the coarse, jittered keystroke timestamps caused
//! by the phone↔acquisition communication delay.
//!
//! The main entry point is [`Population`]: generate a seeded cohort,
//! then record PIN entries, random entries, and emulating attacks as
//! [`p2auth_core::types::Recording`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod artifact;
pub mod cardiac;
pub mod channel;
pub mod layout;
pub mod noise;
pub mod population;
pub mod rng;
pub mod sensor_fault;
pub mod session;
pub mod subject;

pub use population::{Population, PopulationConfig};
pub use sensor_fault::{
    inject_sensor_faults, SensorFaultConfig, SensorFaultKind, SensorFaultStats,
};
pub use session::SessionConfig;
pub use subject::{KeyResponse, Subject};

// Re-export the shared types so simulator users rarely need to import
// the core crate directly.
pub use p2auth_core::types::{
    AccelTrack, ChannelInfo, HandMode, Pin, Placement, Recording, UserId, Wavelength,
};
