//! Nuisance processes: sensor noise, baseline drift and spurious wrist
//! motions.

use crate::rng::normal;
use crate::subject::Subject;
use rand::rngs::StdRng;
use rand::Rng;

/// Adds white Gaussian sensor noise of standard deviation `sigma`.
pub fn add_white_noise(out: &mut [f64], sigma: f64, rng: &mut StdRng) {
    for o in out.iter_mut() {
        *o += normal(rng, 0.0, sigma);
    }
}

/// Adds non-linear baseline drift: a slow sinusoid (band pressure /
/// posture) plus a bounded random walk. This is what the
/// smoothness-priors detrending step exists to remove.
pub fn add_baseline_drift(out: &mut [f64], rate: f64, magnitude: f64, rng: &mut StdRng) {
    let n = out.len();
    if n == 0 {
        return;
    }
    let freq = rng.gen_range(0.04..0.12);
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let sin_amp = magnitude * rng.gen_range(0.4..1.0);
    // Random walk, then rescaled to the requested magnitude.
    let mut walk = Vec::with_capacity(n);
    let mut acc = 0.0;
    for _ in 0..n {
        acc += normal(rng, 0.0, 1.0);
        walk.push(acc);
    }
    let peak = walk.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-9);
    let walk_amp = magnitude * rng.gen_range(0.2..0.6) / peak;
    for (i, o) in out.iter_mut().enumerate() {
        let t = i as f64 / rate;
        *o += sin_amp * (std::f64::consts::TAU * freq * t + phase).sin() + walk_amp * walk[i];
    }
}

/// Adds the subject's spurious wrist-motion events (Poisson arrivals of
/// damped oscillations unrelated to keystrokes). These are what made
/// the paper's volunteer 11 harder to authenticate than volunteer 8.
pub fn add_motion_events(out: &mut [f64], rate: f64, subject: &Subject, rng: &mut StdRng) {
    let duration = out.len() as f64 / rate;
    let expected = subject.extra_motion_rate_hz * duration;
    // Poisson sampling via thinning of a per-second grid.
    let mut t = 0.0;
    while t < duration {
        t += -rng.gen_range(f64::EPSILON..1.0_f64).ln() / subject.extra_motion_rate_hz.max(1e-9);
        if t >= duration || expected <= 0.0 {
            break;
        }
        let amp = subject.artifact_gain * rng.gen_range(0.15..0.55);
        let freq = rng.gen_range(1.5..6.0);
        let damping = rng.gen_range(3.0..9.0);
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let start = (t * rate) as usize;
        let end = ((t + 0.8) * rate).min(out.len() as f64) as usize;
        for (i, o) in out.iter_mut().enumerate().take(end).skip(start) {
            let dt = i as f64 / rate - t;
            *o += amp * (-damping * dt).exp() * (std::f64::consts::TAU * freq * dt + phase).sin();
        }
    }
}

/// Adds burst noise: Poisson-arriving windows of large uniform noise
/// (0.1–0.4 s each), modeling contact loss, cable glitches and other
/// transient sensor dropouts — the kind of disruption the device
/// link's fault model produces at the transport layer, here injected
/// at the signal layer instead. `bursts_per_s` of 0 adds nothing and
/// draws nothing from `rng`.
pub fn add_burst_noise(
    out: &mut [f64],
    rate: f64,
    bursts_per_s: f64,
    magnitude: f64,
    rng: &mut StdRng,
) {
    if bursts_per_s <= 0.0 || out.is_empty() {
        return;
    }
    let duration = out.len() as f64 / rate;
    let mut t = 0.0;
    loop {
        t += -rng.gen_range(f64::EPSILON..1.0_f64).ln() / bursts_per_s;
        if t >= duration {
            break;
        }
        let width = rng.gen_range(0.1..0.4);
        let start = (t * rate) as usize;
        let end = ((t + width) * rate).min(out.len() as f64) as usize;
        for o in out.iter_mut().take(end).skip(start) {
            *o += magnitude * rng.gen_range(-1.0..1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;
    use crate::subject::Subject;

    #[test]
    fn white_noise_statistics() {
        let mut x = vec![0.0; 20_000];
        add_white_noise(&mut x, 0.05, &mut rng_for(1, &[]));
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 0.002);
        assert!((var.sqrt() - 0.05).abs() < 0.005);
    }

    #[test]
    fn drift_is_slow_and_bounded() {
        let mut x = vec![0.0; 1000];
        add_baseline_drift(&mut x, 100.0, 0.5, &mut rng_for(2, &[]));
        let peak = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!(peak <= 1.0, "drift too large: {peak}");
        // Slow: consecutive samples nearly equal.
        let max_step = x
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0, f64::max);
        assert!(max_step < 0.1, "drift too fast: {max_step}");
    }

    #[test]
    fn motion_events_respect_rate() {
        let calm = Subject {
            extra_motion_rate_hz: 0.0,
            ..Subject::sample(3, 0)
        };
        let mut x = vec![0.0; 1000];
        add_motion_events(&mut x, 100.0, &calm, &mut rng_for(3, &[]));
        assert!(x.iter().all(|&v| v == 0.0), "calm subject must add nothing");

        let restless = Subject {
            extra_motion_rate_hz: 2.0,
            ..Subject::sample(3, 0)
        };
        let mut y = vec![0.0; 1000];
        add_motion_events(&mut y, 100.0, &restless, &mut rng_for(4, &[]));
        let energy: f64 = y.iter().map(|v| v * v).sum();
        assert!(energy > 0.1, "restless subject must add motion energy");
    }

    #[test]
    fn burst_noise_is_localized_and_gated() {
        // Zero rate: no samples touched, no RNG state consumed.
        let mut rng = rng_for(5, &[]);
        let before: u64 = rng.gen();
        let mut rng = rng_for(5, &[]);
        let mut x = vec![0.0; 2000];
        add_burst_noise(&mut x, 100.0, 0.0, 2.5, &mut rng);
        assert!(x.iter().all(|&v| v == 0.0));
        assert_eq!(rng.gen::<u64>(), before, "zero rate must not draw");

        // Positive rate: energy appears, but confined to bursts — a
        // majority of samples stay untouched at a low burst rate.
        let mut y = vec![0.0; 2000];
        add_burst_noise(&mut y, 100.0, 0.5, 2.5, &mut rng_for(6, &[]));
        let touched = y.iter().filter(|&&v| v != 0.0).count();
        assert!(touched > 0, "bursts must land in 20 s at 0.5/s");
        assert!(
            touched < y.len() / 2,
            "bursts must be localized, touched {touched}"
        );
        let peak = y.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!(peak <= 2.5 + 1e-12);
    }
}
