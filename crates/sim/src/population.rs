//! Seeded cohorts and attack scenario generation.

use crate::channel::standard_layout;
use crate::layout::watch_hand_presses;
use crate::rng::rng_for;
use crate::session::{synthesize_entry, EntrySpec, SessionConfig};
use crate::subject::Subject;
use p2auth_core::types::{ChannelInfo, HandMode, Pin, Recording};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration of a simulated cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Number of subjects (the paper recruited 15 volunteers).
    pub num_users: usize,
    /// Master seed; everything derives deterministically from it.
    pub seed: u64,
    /// PPG channel layout shared by all recordings (the prototype's
    /// four channels by default; see
    /// [`crate::channel::standard_layout`]).
    pub channels: Vec<ChannelInfo>,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            num_users: 15,
            seed: 0x1cdc_2023,
            channels: standard_layout(4),
        }
    }
}

/// A simulated cohort: subjects plus recording generators.
///
/// # Examples
///
/// ```
/// use p2auth_sim::{HandMode, Pin, Population, PopulationConfig, SessionConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pop = Population::generate(&PopulationConfig { num_users: 3, seed: 1, ..Default::default() });
/// let pin = Pin::new("1628")?;
/// let rec = pop.record_entry(0, &pin, HandMode::OneHanded, &SessionConfig::default(), 0);
/// assert_eq!(rec.validate(), Ok(()));
/// assert_eq!(rec.num_channels(), 4); // the prototype's 2x(IR+red) layout
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Population {
    config: PopulationConfig,
    subjects: Vec<Subject>,
}

// Tag words separating the RNG streams of the different generators.
const TAG_ENTRY: u64 = 1;
const TAG_RANDOM: u64 = 2;
const TAG_EMULATE: u64 = 3;
const TAG_SPLIT: u64 = 4;

impl Population {
    /// Generates the cohort deterministically from the config seed.
    ///
    /// # Panics
    ///
    /// Panics if `num_users` is zero or the channel layout is empty.
    pub fn generate(config: &PopulationConfig) -> Self {
        assert!(
            config.num_users > 0,
            "population must have at least one user"
        );
        assert!(
            !config.channels.is_empty(),
            "channel layout must be non-empty"
        );
        let subjects = (0..config.num_users as u32)
            .map(|i| Subject::sample(config.seed, i))
            .collect();
        Self {
            config: config.clone(),
            subjects,
        }
    }

    /// Number of subjects.
    pub fn num_users(&self) -> usize {
        self.subjects.len()
    }

    /// Borrow of one subject.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn subject(&self, idx: usize) -> &Subject {
        &self.subjects[idx]
    }

    /// The channel layout used by every recording.
    pub fn channels(&self) -> &[ChannelInfo] {
        &self.config.channels
    }

    /// Returns a copy of the population with every subject transformed
    /// by `f` — useful for controlled experiments that pin one
    /// parameter across the cohort (e.g. the extra-motion sweep of the
    /// paper's §VI discussion).
    pub fn map_subjects<F>(mut self, f: F) -> Self
    where
        F: FnMut(Subject) -> Subject,
    {
        self.subjects = self.subjects.into_iter().map(f).collect();
        self
    }

    /// Records subject `user` legitimately entering `pin`. `nonce`
    /// distinguishes repetitions; the same `(user, pin, mode, nonce)`
    /// always produces the same recording.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn record_entry(
        &self,
        user: usize,
        pin: &Pin,
        mode: HandMode,
        session: &SessionConfig,
        nonce: u64,
    ) -> Recording {
        let subject = &self.subjects[user];
        let mut rng = rng_for(
            self.config.seed,
            &[TAG_ENTRY, user as u64, pin_tag(pin), mode_tag(mode), nonce],
        );
        let watch = self.watch_hand_vector(subject, pin, mode, &mut rng);
        synthesize_entry(
            EntrySpec {
                typist: subject,
                cadence: subject,
                mode,
            },
            pin,
            &watch,
            &self.config.channels,
            session,
            &mut rng,
        )
    }

    /// Records subject `user` entering `pin` as they present
    /// `weeks` after enrollment (long-term drift; the paper's 8-week
    /// preliminary study, §III-B). `weeks == 0.0` matches
    /// [`Population::record_entry`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range or `weeks` is negative.
    pub fn record_entry_aged(
        &self,
        user: usize,
        pin: &Pin,
        mode: HandMode,
        session: &SessionConfig,
        nonce: u64,
        weeks: f64,
    ) -> Recording {
        let subject = self.subjects[user].aged(weeks);
        let mut rng = rng_for(
            self.config.seed,
            &[TAG_ENTRY, user as u64, pin_tag(pin), mode_tag(mode), nonce],
        );
        let watch = self.watch_hand_vector(&subject, pin, mode, &mut rng);
        synthesize_entry(
            EntrySpec {
                typist: &subject,
                cadence: &subject,
                mode,
            },
            pin,
            &watch,
            &self.config.channels,
            session,
            &mut rng,
        )
    }

    /// Synthesizes `duration_s` seconds of idle wear for `user`: pulse,
    /// drift and sensor noise but no keystrokes. This is the signal the
    /// paper's §VI usage model monitors between authentications ("the
    /// wear of the watch is detected based on the heart rate status").
    /// Returns one waveform per configured channel.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range or `duration_s` is not positive.
    pub fn record_idle(
        &self,
        user: usize,
        duration_s: f64,
        session: &SessionConfig,
        nonce: u64,
    ) -> Vec<Vec<f64>> {
        assert!(duration_s > 0.0 && duration_s.is_finite(), "bad duration");
        let subject = &self.subjects[user];
        let mut rng = rng_for(self.config.seed, &[5, user as u64, nonce]);
        let rate = session.sample_rate;
        let n = (duration_s * rate).round() as usize;
        let base_pulse = crate::cardiac::pulse_train(subject, n, rate, &mut rng);
        self.config
            .channels
            .iter()
            .map(|&info| {
                let amp = crate::channel::pulse_amplitude(info);
                let mut ch: Vec<f64> = base_pulse.iter().map(|v| v * amp).collect();
                crate::noise::add_baseline_drift(&mut ch, rate, session.drift_magnitude, &mut rng);
                crate::noise::add_white_noise(&mut ch, crate::channel::noise_sigma(info), &mut rng);
                ch
            })
            .collect()
    }

    /// Records subject `user` typing a random 4-digit PIN — used both
    /// for random-attack traffic and for no-PIN enrollment data.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn record_random_entry(
        &self,
        user: usize,
        mode: HandMode,
        session: &SessionConfig,
        nonce: u64,
    ) -> Recording {
        let mut rng = rng_for(self.config.seed, &[TAG_RANDOM, user as u64, nonce]);
        let digits: String = (0..4)
            .map(|_| char::from(b'0' + rng.gen_range(0..10_u8)))
            .collect();
        let pin = Pin::new(&digits).expect("4 digits is a valid PIN");
        let subject = &self.subjects[user];
        let watch = self.watch_hand_vector(subject, &pin, mode, &mut rng);
        synthesize_entry(
            EntrySpec {
                typist: subject,
                cadence: subject,
                mode,
            },
            &pin,
            &watch,
            &self.config.channels,
            session,
            &mut rng,
        )
    }

    /// Records a two-handed entry in which the watch hand presses
    /// exactly `watch_count` keys — the paper's double-2 / double-3
    /// cases.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range or `watch_count` is not in
    /// `[1, pin.len()]`.
    pub fn record_entry_two_handed(
        &self,
        user: usize,
        pin: &Pin,
        watch_count: usize,
        session: &SessionConfig,
        nonce: u64,
    ) -> Recording {
        assert!(
            (1..=pin.len()).contains(&watch_count),
            "watch_count {watch_count} out of range for a {}-digit PIN",
            pin.len()
        );
        let subject = &self.subjects[user];
        let mut rng = rng_for(
            self.config.seed,
            &[
                TAG_ENTRY,
                user as u64,
                pin_tag(pin),
                100 + watch_count as u64,
                nonce,
            ],
        );
        let mut watch: Vec<bool> = pin
            .digits()
            .iter()
            .map(|&d| watch_hand_presses(d, subject.two_hand_boundary))
            .collect();
        adjust_split(&mut watch, watch_count, watch_count, &mut rng);
        synthesize_entry(
            EntrySpec {
                typist: subject,
                cadence: subject,
                mode: HandMode::TwoHanded,
            },
            pin,
            &watch,
            &self.config.channels,
            session,
            &mut rng,
        )
    }

    /// Emulating-attack variant of [`Population::record_entry_two_handed`]:
    /// the attacker imitates the victim's rhythm and presses exactly
    /// `watch_count` keys with the watch hand (mirroring the victim's
    /// observable split).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal, or `watch_count` is
    /// not in `[1, pin.len()]`.
    pub fn record_emulating_attack_two_handed(
        &self,
        attacker: usize,
        victim: usize,
        pin: &Pin,
        watch_count: usize,
        session: &SessionConfig,
        nonce: u64,
    ) -> Recording {
        assert_ne!(attacker, victim, "attacker must differ from victim");
        assert!(
            (1..=pin.len()).contains(&watch_count),
            "bad watch_count {watch_count}"
        );
        let atk = &self.subjects[attacker];
        let vic = &self.subjects[victim];
        let mut rng = rng_for(
            self.config.seed,
            &[
                TAG_EMULATE,
                attacker as u64,
                victim as u64,
                pin_tag(pin),
                100 + watch_count as u64,
                nonce,
            ],
        );
        let mut watch: Vec<bool> = pin
            .digits()
            .iter()
            .map(|&d| watch_hand_presses(d, vic.two_hand_boundary))
            .collect();
        adjust_split(&mut watch, watch_count, watch_count, &mut rng);
        synthesize_entry(
            EntrySpec {
                typist: atk,
                cadence: vic,
                mode: HandMode::TwoHanded,
            },
            pin,
            &watch,
            &self.config.channels,
            session,
            &mut rng,
        )
    }

    /// Records an emulating attack (paper §IV-D): `attacker` has
    /// observed `victim` (e.g. by shoulder surfing), knows the PIN, and
    /// imitates the victim's typing rhythm and hand split — but types
    /// with their own wrist physiology.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or they are equal.
    pub fn record_emulating_attack(
        &self,
        attacker: usize,
        victim: usize,
        pin: &Pin,
        mode: HandMode,
        session: &SessionConfig,
        nonce: u64,
    ) -> Recording {
        assert_ne!(attacker, victim, "attacker must differ from victim");
        let atk = &self.subjects[attacker];
        let vic = &self.subjects[victim];
        let mut rng = rng_for(
            self.config.seed,
            &[
                TAG_EMULATE,
                attacker as u64,
                victim as u64,
                pin_tag(pin),
                nonce,
            ],
        );
        // The attacker reproduces the victim's observable split.
        let watch = self.watch_hand_vector(vic, pin, mode, &mut rng);
        synthesize_entry(
            EntrySpec {
                typist: atk,
                cadence: vic,
                mode,
            },
            pin,
            &watch,
            &self.config.channels,
            session,
            &mut rng,
        )
    }

    /// Determines which keystrokes the watch hand performs. One-handed:
    /// all of them. Two-handed: the subject's habitual split, adjusted
    /// so the watch hand presses two or three of the keys (the cases
    /// the paper's system accepts).
    fn watch_hand_vector(
        &self,
        subject: &Subject,
        pin: &Pin,
        mode: HandMode,
        rng: &mut StdRng,
    ) -> Vec<bool> {
        let digits = pin.digits();
        match mode {
            HandMode::OneHanded => vec![true; digits.len()],
            HandMode::TwoHanded => {
                let mut watch: Vec<bool> = digits
                    .iter()
                    .map(|&d| watch_hand_presses(d, subject.two_hand_boundary))
                    .collect();
                let max_watch = digits.len().saturating_sub(1).max(2);
                let mut split_rng = rng_for(
                    self.config.seed,
                    &[
                        TAG_SPLIT,
                        subject.id.0 as u64,
                        pin_tag(pin),
                        rng.gen::<u64>(),
                    ],
                );
                adjust_split(&mut watch, 2, max_watch, &mut split_rng);
                watch
            }
        }
    }
}

/// Flips entries of `watch` until the number of `true`s lies in
/// `[min_true, max_true]`.
fn adjust_split(watch: &mut [bool], min_true: usize, max_true: usize, rng: &mut StdRng) {
    let mut idxs: Vec<usize> = (0..watch.len()).collect();
    idxs.shuffle(rng);
    let count = |w: &[bool]| w.iter().filter(|&&b| b).count();
    for &i in &idxs {
        if count(watch) < min_true && !watch[i] {
            watch[i] = true;
        }
    }
    for &i in &idxs {
        if count(watch) > max_true && watch[i] {
            watch[i] = false;
        }
    }
}

fn pin_tag(pin: &Pin) -> u64 {
    pin.digits()
        .iter()
        .fold(0_u64, |acc, &d| acc * 10 + d as u64)
}

fn mode_tag(mode: HandMode) -> u64 {
    match mode {
        HandMode::OneHanded => 0,
        HandMode::TwoHanded => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> Population {
        Population::generate(&PopulationConfig {
            num_users: 4,
            seed: 77,
            ..Default::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = PopulationConfig {
            num_users: 3,
            seed: 5,
            ..Default::default()
        };
        let a = Population::generate(&cfg);
        let b = Population::generate(&cfg);
        assert_eq!(a.subject(2), b.subject(2));
    }

    #[test]
    fn recordings_reproducible_and_distinct() {
        let p = pop();
        let pin = Pin::new("1628").unwrap();
        let s = SessionConfig::default();
        let a = p.record_entry(0, &pin, HandMode::OneHanded, &s, 1);
        let b = p.record_entry(0, &pin, HandMode::OneHanded, &s, 1);
        let c = p.record_entry(0, &pin, HandMode::OneHanded, &s, 2);
        assert_eq!(a, b);
        assert_ne!(a, c, "different nonces must differ");
        assert_eq!(a.validate(), Ok(()));
    }

    #[test]
    fn two_handed_split_in_range() {
        let p = pop();
        let pin = Pin::new("1379").unwrap();
        let s = SessionConfig::default();
        for user in 0..p.num_users() {
            for nonce in 0..5 {
                let rec = p.record_entry(user, &pin, HandMode::TwoHanded, &s, nonce);
                let count = rec.watch_hand.iter().filter(|&&b| b).count();
                assert!((2..=3).contains(&count), "split count {count}");
            }
        }
    }

    #[test]
    fn random_entries_vary_pins() {
        let p = pop();
        let s = SessionConfig::default();
        let pins: Vec<String> = (0..12)
            .map(|n| {
                p.record_random_entry(1, HandMode::OneHanded, &s, n)
                    .pin_entered
                    .to_string()
            })
            .collect();
        let mut unique = pins.clone();
        unique.sort();
        unique.dedup();
        assert!(unique.len() > 4, "random PINs too repetitive: {pins:?}");
    }

    #[test]
    fn emulating_attack_copies_cadence_not_physiology() {
        let p = pop();
        let pin = Pin::new("5094").unwrap();
        let s = SessionConfig::default();
        let atk = p.record_emulating_attack(1, 0, &pin, HandMode::OneHanded, &s, 1);
        assert_eq!(
            atk.user.0, 1,
            "the attack recording belongs to the attacker"
        );
        assert_eq!(atk.pin_entered, pin, "the attacker types the victim's PIN");
        assert_eq!(atk.validate(), Ok(()));
        // Cadence follows the victim's habitual interval.
        let vic_iki = p.subject(0).inter_key_s;
        let mean_gap = atk
            .true_key_times
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64 / atk.sample_rate)
            .sum::<f64>()
            / 3.0;
        assert!(
            (mean_gap - vic_iki).abs() < 0.25,
            "gap {mean_gap} vs victim {vic_iki}"
        );
    }

    #[test]
    fn forced_watch_counts() {
        let p = pop();
        let pin = Pin::new("1628").unwrap();
        let s = SessionConfig::default();
        for count in 1..=4 {
            let rec = p.record_entry_two_handed(0, &pin, count, &s, 3);
            assert_eq!(rec.watch_hand.iter().filter(|&&b| b).count(), count);
            assert_eq!(rec.validate(), Ok(()));
            let atk = p.record_emulating_attack_two_handed(1, 0, &pin, count, &s, 3);
            assert_eq!(atk.watch_hand.iter().filter(|&&b| b).count(), count);
        }
    }

    #[test]
    #[should_panic(expected = "attacker must differ")]
    fn self_attack_panics() {
        let p = pop();
        let pin = Pin::new("1628").unwrap();
        p.record_emulating_attack(
            0,
            0,
            &pin,
            HandMode::OneHanded,
            &SessionConfig::default(),
            1,
        );
    }

    #[test]
    fn adjust_split_bounds() {
        let mut rng = rng_for(1, &[]);
        let mut w = vec![false, false, false, false];
        adjust_split(&mut w, 2, 3, &mut rng);
        let c = w.iter().filter(|&&b| b).count();
        assert!((2..=3).contains(&c));
        let mut w = vec![true, true, true, true];
        adjust_split(&mut w, 2, 3, &mut rng);
        let c = w.iter().filter(|&&b| b).count();
        assert!((2..=3).contains(&c));
    }
}
