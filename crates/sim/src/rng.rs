//! Deterministic seeding helpers.
//!
//! Every simulated entity derives its randomness from a `(seed, tags…)`
//! mix so the whole cohort — and every individual recording — is
//! reproducible from the population seed alone.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step, used to mix tag words into a seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes a base seed with tag words into a new 64-bit seed.
pub fn mix(seed: u64, tags: &[u64]) -> u64 {
    let mut acc = splitmix64(seed);
    for &t in tags {
        acc = splitmix64(acc ^ splitmix64(t));
    }
    acc
}

/// A standard RNG seeded from a mixed seed.
pub fn rng_for(seed: u64, tags: &[u64]) -> StdRng {
    StdRng::seed_from_u64(mix(seed, tags))
}

/// Draws from a normal distribution via Box–Muller (two uniforms).
pub fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    use rand::Rng;
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn mixing_is_deterministic_and_tag_sensitive() {
        assert_eq!(mix(1, &[2, 3]), mix(1, &[2, 3]));
        assert_ne!(mix(1, &[2, 3]), mix(1, &[3, 2]));
        assert_ne!(mix(1, &[2]), mix(2, &[2]));
    }

    #[test]
    fn rng_reproducible() {
        let a: f64 = rng_for(7, &[1]).gen();
        let b: f64 = rng_for(7, &[1]).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng_for(42, &[]);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }
}
