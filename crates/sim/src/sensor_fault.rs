//! Wearable-side sensor fault model: the failure modes of the PPG
//! front end itself, as opposed to the *transport* faults of the device
//! crate's `FaultyLink`. The two compose: a recording is first degraded
//! here (what the ADC actually sampled), then framed and sent through a
//! lossy link.
//!
//! Five fault families, each independently rate-gated and seeded:
//!
//! * **Motion-artifact bursts** — band-limited wrist motion (damped
//!   1.5–6 Hz oscillations, like the keystroke artifacts but larger and
//!   unrelated to any key press) coupled into every channel through
//!   [`channel::artifact_coupling`](crate::channel::artifact_coupling),
//!   so radial/ulnar placements see the same physical event differently.
//! * **LED/ADC saturation** — episodes where the front end rails and
//!   the signal clips flat at the converter limit.
//! * **Sensor detach** — the band lifts off; all channels collapse to
//!   an ambient-light DC level plus the noise floor.
//! * **Sample dropout** — the acquisition loop stalls and repeats its
//!   last sample for a short run (sample-and-hold flatline).
//! * **Baseline wander** — a slow large-amplitude sinusoid from band
//!   pressure changes, beyond what the enrolment-time drift model adds.
//!
//! Like the link-level `FaultConfig`, the all-zero [`Default`] is
//! guaranteed to be a no-op: [`inject_sensor_faults`] returns a
//! bit-identical copy of the recording and draws nothing from any RNG,
//! so a zero-rate configuration composes with the clean path without
//! perturbing downstream determinism.

use crate::channel::{artifact_coupling, noise_sigma, pulse_amplitude};
use crate::rng::{normal, rng_for};
use p2auth_core::types::Recording;
use rand::rngs::StdRng;
use rand::Rng;

/// Per-fault-family seed tags (mixed with the config seed and the
/// caller's nonce, so each family has an independent stream and
/// enabling one family never shifts another's draws).
const TAG_MOTION: u64 = 0x5e_0001;
const TAG_SATURATION: u64 = 0x5e_0002;
const TAG_DETACH: u64 = 0x5e_0003;
const TAG_DETACH_NOISE: u64 = 0x5e_0004;
const TAG_DROPOUT: u64 = 0x5e_0005;
const TAG_WANDER: u64 = 0x5e_0006;

/// One fault family, for presets and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorFaultKind {
    /// Band-limited wrist-motion bursts.
    Motion,
    /// LED/ADC saturation clipping episodes.
    Saturation,
    /// Sensor-detach episodes (ambient + noise floor).
    Detach,
    /// Sample-and-hold dropout runs.
    Dropout,
    /// Slow large-amplitude baseline wander.
    Wander,
}

impl SensorFaultKind {
    /// Every fault family, in a stable order (used by sweeps).
    pub const ALL: [SensorFaultKind; 5] = [
        SensorFaultKind::Motion,
        SensorFaultKind::Saturation,
        SensorFaultKind::Detach,
        SensorFaultKind::Dropout,
        SensorFaultKind::Wander,
    ];

    /// Stable machine-readable name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SensorFaultKind::Motion => "motion",
            SensorFaultKind::Saturation => "saturation",
            SensorFaultKind::Detach => "detach",
            SensorFaultKind::Dropout => "dropout",
            SensorFaultKind::Wander => "wander",
        }
    }

    /// Parses the name produced by [`SensorFaultKind::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "motion" => Some(SensorFaultKind::Motion),
            "saturation" => Some(SensorFaultKind::Saturation),
            "detach" => Some(SensorFaultKind::Detach),
            "dropout" => Some(SensorFaultKind::Dropout),
            "wander" => Some(SensorFaultKind::Wander),
            _ => None,
        }
    }
}

impl std::fmt::Display for SensorFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration of the sensor fault injector.
///
/// The [`Default`] has every rate (and the wander magnitude) at zero
/// and is guaranteed to inject nothing and draw nothing from the RNG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorFaultConfig {
    /// Wrist-motion bursts per second.
    pub motion_rate_hz: f64,
    /// Peak amplitude of a motion burst (signal units, before the
    /// per-channel coupling factor).
    pub motion_magnitude: f64,
    /// Saturation episodes per second.
    pub saturation_rate_hz: f64,
    /// Rail value the signal clips to while saturated.
    pub saturation_level: f64,
    /// Sensor-detach episodes per second.
    pub detach_rate_hz: f64,
    /// Ambient (DC) level seen while the band is detached.
    pub detach_ambient: f64,
    /// Sample-and-hold dropout runs per second.
    pub dropout_rate_hz: f64,
    /// Peak amplitude of the slow baseline wander; 0 disables it.
    pub wander_magnitude: f64,
    /// Seed of the injector's RNG streams.
    pub seed: u64,
}

impl Default for SensorFaultConfig {
    fn default() -> Self {
        Self {
            motion_rate_hz: 0.0,
            motion_magnitude: 4.0,
            saturation_rate_hz: 0.0,
            saturation_level: 2.5,
            detach_rate_hz: 0.0,
            detach_ambient: 0.05,
            dropout_rate_hz: 0.0,
            wander_magnitude: 0.0,
            seed: 0xbad_5e6,
        }
    }
}

impl SensorFaultConfig {
    /// Whether any fault family can fire. A config for which this is
    /// `false` is guaranteed to be a bit-identical no-op.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.motion_rate_hz > 0.0
            || self.saturation_rate_hz > 0.0
            || self.detach_rate_hz > 0.0
            || self.dropout_rate_hz > 0.0
            || self.wander_magnitude > 0.0
    }

    /// A single-family config scaled by `intensity` in `[0, 1]` (0 is
    /// inactive, 1 the most violent sweep point). Used by the fault
    /// sweeps and the CLI `quality` command.
    #[must_use]
    pub fn preset(kind: SensorFaultKind, intensity: f64, seed: u64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        let mut c = Self {
            seed,
            ..Self::default()
        };
        match kind {
            SensorFaultKind::Motion => {
                c.motion_rate_hz = 0.8 * i;
                c.motion_magnitude = 3.0 + 5.0 * i;
            }
            SensorFaultKind::Saturation => {
                c.saturation_rate_hz = 0.6 * i;
            }
            SensorFaultKind::Detach => {
                c.detach_rate_hz = 0.45 * i;
            }
            SensorFaultKind::Dropout => {
                c.dropout_rate_hz = 1.2 * i;
            }
            SensorFaultKind::Wander => {
                c.wander_magnitude = 2.5 * i;
            }
        }
        c
    }
}

/// What the injector actually did to one recording.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SensorFaultStats {
    /// Motion bursts injected.
    pub motion_bursts: usize,
    /// Saturation episodes injected.
    pub saturation_episodes: usize,
    /// Sensor-detach episodes injected.
    pub detach_episodes: usize,
    /// Sample-and-hold dropout runs injected.
    pub dropout_runs: usize,
    /// Samples (per channel, summed over channels) forced to a rail.
    pub samples_clipped: usize,
    /// Samples collapsed to the ambient floor.
    pub samples_detached: usize,
    /// Samples replaced by a held previous value.
    pub samples_dropped: usize,
    /// Whether baseline wander was applied.
    pub wander_applied: bool,
}

impl SensorFaultStats {
    /// Whether the injector changed anything at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self.motion_bursts > 0
            || self.saturation_episodes > 0
            || self.detach_episodes > 0
            || self.dropout_runs > 0
            || self.wander_applied
    }
}

/// Poisson arrivals over `[0, duration)`: the next arrival after `t`.
fn next_arrival(rng: &mut StdRng, t: f64, rate_hz: f64) -> f64 {
    t + -rng.gen_range(f64::EPSILON..1.0_f64).ln() / rate_hz
}

/// Applies the configured sensor faults to a copy of `rec`.
///
/// `nonce` distinguishes repeated sessions under one config (e.g. the
/// supervisor's re-prompt attempts): same `(config, nonce, rec)` always
/// produces the same output, different nonces produce independent fault
/// realizations. An inactive config returns a bit-identical copy and
/// draws nothing from any RNG.
#[must_use]
pub fn inject_sensor_faults(
    rec: &Recording,
    config: &SensorFaultConfig,
    nonce: u64,
) -> (Recording, SensorFaultStats) {
    let mut out = rec.clone();
    let mut stats = SensorFaultStats::default();
    let n = out.num_samples();
    if !config.is_active() || n == 0 {
        return (out, stats);
    }
    let rate = out.sample_rate;
    let duration = n as f64 / rate;
    let infos = out.channels.clone();

    // Motion bursts: one physical wrist event, coupled into every
    // channel through the same placement/wavelength model as keystroke
    // artifacts. The anchor digit stands for where on the pad plane the
    // wrist loads, steering the radial/ulnar balance.
    if config.motion_rate_hz > 0.0 && config.motion_magnitude > 0.0 {
        let mut rng = rng_for(config.seed, &[TAG_MOTION, nonce]);
        let mut t = 0.0_f64;
        loop {
            t = next_arrival(&mut rng, t, config.motion_rate_hz);
            if t >= duration {
                break;
            }
            let amp = config.motion_magnitude * rng.gen_range(0.6..1.0);
            let freq = rng.gen_range(1.5..6.0);
            let damping = rng.gen_range(2.0..6.0);
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            let anchor = rng.gen_range(0.0..10.0) as u8;
            let start = (t * rate) as usize;
            let end = (((t + 0.9) * rate) as usize).min(n);
            for (ch, info) in infos.iter().enumerate() {
                let coupling = artifact_coupling(*info, anchor);
                for (i, o) in out.ppg[ch].iter_mut().enumerate().take(end).skip(start) {
                    let dt = i as f64 / rate - t;
                    *o += amp
                        * coupling
                        * (-damping * dt).exp()
                        * (std::f64::consts::TAU * freq * dt + phase).sin();
                }
            }
            stats.motion_bursts += 1;
        }
    }

    // Saturation: the front end rails; every channel sits flat at the
    // converter limit for the episode.
    if config.saturation_rate_hz > 0.0 {
        let mut rng = rng_for(config.seed, &[TAG_SATURATION, nonce]);
        let mut t = 0.0_f64;
        // Episodes whose widths would overlap the next arrival are
        // clamped forward so the clipped-sample count stays exact.
        let mut cursor = 0_usize;
        loop {
            t = next_arrival(&mut rng, t, config.saturation_rate_hz);
            if t >= duration {
                break;
            }
            let width = rng.gen_range(0.3..0.8);
            let sign = if rng.gen_range(0.0..1.0_f64) < 0.5 {
                1.0
            } else {
                -1.0
            };
            let rail = sign * config.saturation_level;
            let start = ((t * rate) as usize).max(cursor);
            let end = (((t + width) * rate) as usize).min(n);
            if start >= end {
                continue;
            }
            cursor = end;
            for c in &mut out.ppg {
                for o in c.iter_mut().take(end).skip(start) {
                    *o = rail;
                }
            }
            stats.saturation_episodes += 1;
            stats.samples_clipped += (end - start) * infos.len();
        }
    }

    // Detach: the band lifts off; channels collapse to ambient light
    // plus a reduced noise floor.
    if config.detach_rate_hz > 0.0 {
        let mut rng = rng_for(config.seed, &[TAG_DETACH, nonce]);
        let mut t = 0.0_f64;
        let mut cursor = 0_usize;
        loop {
            t = next_arrival(&mut rng, t, config.detach_rate_hz);
            if t >= duration {
                break;
            }
            let width = rng.gen_range(0.5..1.5);
            let start = ((t * rate) as usize).max(cursor);
            let end = (((t + width) * rate) as usize).min(n);
            if start >= end {
                continue;
            }
            cursor = end;
            for (ch, info) in infos.iter().enumerate() {
                let mut floor_rng = rng_for(
                    config.seed,
                    &[TAG_DETACH_NOISE, nonce, ch as u64, start as u64],
                );
                let sigma = 0.25 * noise_sigma(*info);
                for o in out.ppg[ch].iter_mut().take(end).skip(start) {
                    *o = config.detach_ambient + normal(&mut floor_rng, 0.0, sigma);
                }
            }
            stats.detach_episodes += 1;
            stats.samples_detached += (end - start) * infos.len();
        }
    }

    // Dropout: the acquisition loop stalls and repeats its last sample.
    if config.dropout_rate_hz > 0.0 {
        let mut rng = rng_for(config.seed, &[TAG_DROPOUT, nonce]);
        let mut t = 0.0_f64;
        let mut cursor = 0_usize;
        loop {
            t = next_arrival(&mut rng, t, config.dropout_rate_hz);
            if t >= duration {
                break;
            }
            let width = rng.gen_range(0.05..0.3);
            let start = ((t * rate) as usize).max(cursor);
            let end = (((t + width) * rate) as usize).min(n);
            if start >= end {
                continue;
            }
            cursor = end;
            for c in &mut out.ppg {
                let held = c[start.saturating_sub(1).min(n - 1)];
                for o in c.iter_mut().take(end).skip(start) {
                    *o = held;
                }
            }
            stats.dropout_runs += 1;
            stats.samples_dropped += (end - start) * infos.len();
        }
    }

    // Baseline wander: a slow, shared pressure change, scaled by each
    // channel's pulse amplitude.
    if config.wander_magnitude > 0.0 {
        let mut rng = rng_for(config.seed, &[TAG_WANDER, nonce]);
        let freq = rng.gen_range(0.02..0.08);
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let amp = config.wander_magnitude * rng.gen_range(0.5..1.0);
        for (ch, info) in infos.iter().enumerate() {
            let scale = pulse_amplitude(*info);
            for (i, o) in out.ppg[ch].iter_mut().enumerate() {
                let time = i as f64 / rate;
                *o += amp * scale * (std::f64::consts::TAU * freq * time + phase).sin();
            }
        }
        stats.wander_applied = true;
    }

    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2auth_core::types::{ChannelInfo, HandMode, Pin, Placement, UserId, Wavelength};

    fn test_recording() -> Recording {
        let n = 900;
        let mk = |amp: f64, f: f64| -> Vec<f64> {
            (0..n)
                .map(|i| amp * (i as f64 * std::f64::consts::TAU * f / 100.0).sin())
                .collect()
        };
        Recording {
            user: UserId(0),
            sample_rate: 100.0,
            ppg: vec![mk(1.0, 1.2), mk(0.9, 1.2)],
            channels: vec![
                ChannelInfo {
                    wavelength: Wavelength::Infrared,
                    placement: Placement::Radial,
                },
                ChannelInfo {
                    wavelength: Wavelength::Infrared,
                    placement: Placement::Ulnar,
                },
            ],
            accel: None,
            pin_entered: Pin::new("1628").expect("valid"),
            reported_key_times: vec![150, 300, 450, 600],
            true_key_times: vec![150, 300, 450, 600],
            watch_hand: vec![true; 4],
            hand_mode: HandMode::OneHanded,
        }
    }

    #[test]
    fn zero_config_is_bit_identical() {
        let rec = test_recording();
        let cfg = SensorFaultConfig::default();
        assert!(!cfg.is_active());
        let (out, stats) = inject_sensor_faults(&rec, &cfg, 7);
        assert_eq!(out, rec, "inactive config must be a no-op");
        assert_eq!(stats, SensorFaultStats::default());
        assert!(!stats.any());
    }

    #[test]
    fn zero_intensity_presets_are_inactive() {
        for kind in SensorFaultKind::ALL {
            assert!(
                !SensorFaultConfig::preset(kind, 0.0, 1).is_active(),
                "{kind} at zero intensity must be inactive"
            );
            assert!(
                SensorFaultConfig::preset(kind, 1.0, 1).is_active(),
                "{kind} at full intensity must be active"
            );
        }
    }

    #[test]
    fn replay_is_deterministic_and_nonce_sensitive() {
        let rec = test_recording();
        let cfg = SensorFaultConfig {
            motion_rate_hz: 0.5,
            saturation_rate_hz: 0.3,
            detach_rate_hz: 0.3,
            dropout_rate_hz: 0.8,
            wander_magnitude: 1.0,
            ..SensorFaultConfig::default()
        };
        let (a, sa) = inject_sensor_faults(&rec, &cfg, 1);
        let (b, sb) = inject_sensor_faults(&rec, &cfg, 1);
        assert_eq!(a, b, "same (config, nonce) must replay identically");
        assert_eq!(sa, sb);
        let (c, _) = inject_sensor_faults(&rec, &cfg, 2);
        assert_ne!(a.ppg, c.ppg, "a different nonce must vary the faults");
        // Faults never change the session metadata.
        assert_eq!(a.true_key_times, rec.true_key_times);
        assert_eq!(a.reported_key_times, rec.reported_key_times);
        assert_eq!(a.pin_entered, rec.pin_entered);
        assert_eq!(a.validate(), Ok(()));
    }

    #[test]
    fn each_family_alters_the_signal() {
        let rec = test_recording();
        for kind in SensorFaultKind::ALL {
            let cfg = SensorFaultConfig::preset(kind, 1.0, 3);
            // Poisson arrivals can (rarely) miss a short recording
            // entirely; any one of a few nonces sufficing is what the
            // sweeps rely on.
            let acted = (0..5).any(|k| {
                let (out, stats) = inject_sensor_faults(&rec, &cfg, 11 + k);
                out.ppg != rec.ppg && stats.any()
            });
            assert!(acted, "{kind} at full intensity must act");
        }
    }

    #[test]
    fn saturation_sits_flat_at_the_rail() {
        let rec = test_recording();
        let cfg = SensorFaultConfig {
            saturation_rate_hz: 0.4,
            ..SensorFaultConfig::default()
        };
        let (out, stats) = inject_sensor_faults(&rec, &cfg, 5);
        assert!(stats.saturation_episodes > 0);
        let at_rail = out.ppg[0]
            .iter()
            .filter(|v| v.abs() == cfg.saturation_level)
            .count();
        assert!(
            at_rail >= stats.samples_clipped / out.num_channels(),
            "clipped samples must sit exactly at the rail"
        );
    }

    #[test]
    fn detach_collapses_to_the_ambient_floor() {
        let rec = test_recording();
        let cfg = SensorFaultConfig {
            detach_rate_hz: 0.4,
            ..SensorFaultConfig::default()
        };
        let (out, stats) = inject_sensor_faults(&rec, &cfg, 9);
        assert!(stats.detach_episodes > 0);
        let near_ambient = out.ppg[0]
            .iter()
            .filter(|v| (**v - cfg.detach_ambient).abs() < 0.1)
            .count();
        assert!(
            near_ambient >= stats.samples_detached / out.num_channels(),
            "detached samples must hug the ambient level"
        );
    }

    #[test]
    fn families_use_independent_streams() {
        // Enabling a second family must not move the first family's
        // events: the motion-only portion of a combined run matches the
        // motion-only run wherever the second family did not overwrite.
        let rec = test_recording();
        let motion = SensorFaultConfig {
            motion_rate_hz: 0.5,
            ..SensorFaultConfig::default()
        };
        let both = SensorFaultConfig {
            motion_rate_hz: 0.5,
            wander_magnitude: 0.0,
            dropout_rate_hz: 0.0,
            ..motion
        };
        let (a, _) = inject_sensor_faults(&rec, &motion, 4);
        let (b, _) = inject_sensor_faults(&rec, &both, 4);
        assert_eq!(a, b);
        // With wander added, the motion bursts land at the same places:
        // subtracting the wander-only run leaves the motion-only deltas.
        let wander_too = SensorFaultConfig {
            wander_magnitude: 1.0,
            ..motion
        };
        let wander_only = SensorFaultConfig {
            motion_rate_hz: 0.0,
            wander_magnitude: 1.0,
            ..SensorFaultConfig::default()
        };
        let (combined, _) = inject_sensor_faults(&rec, &wander_too, 4);
        let (wander, _) = inject_sensor_faults(&rec, &wander_only, 4);
        for ch in 0..rec.num_channels() {
            for i in 0..rec.num_samples() {
                let motion_delta = a.ppg[ch][i] - rec.ppg[ch][i];
                let combined_delta = combined.ppg[ch][i] - wander.ppg[ch][i];
                assert!(
                    (motion_delta - combined_delta).abs() < 1e-9,
                    "streams must be independent at ch{ch}[{i}]"
                );
            }
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in SensorFaultKind::ALL {
            assert_eq!(SensorFaultKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SensorFaultKind::parse("nope"), None);
    }
}
