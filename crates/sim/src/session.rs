//! Composition of complete PIN-entry recordings.

use crate::accel::accel_track;
use crate::artifact::{add_keystroke_artifact_scaled, EventJitter};
use crate::cardiac::pulse_train;
use crate::channel::{noise_sigma, pulse_amplitude};
use crate::noise::{add_baseline_drift, add_burst_noise, add_motion_events, add_white_noise};
use crate::rng::normal;
use crate::subject::Subject;
use p2auth_core::types::{ChannelInfo, HandMode, Pin, Placement, Recording, UserId, Wavelength};
use rand::rngs::StdRng;
use rand::Rng;

/// Acquisition-session parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// PPG sampling rate (100 Hz on the prototype).
    pub sample_rate: f64,
    /// Seconds of signal before the first keystroke.
    pub pre_roll_s: f64,
    /// Seconds of signal after the last keystroke.
    pub post_roll_s: f64,
    /// Maximum magnitude of the keystroke-timestamp error introduced by
    /// the phone↔acquisition communication delay (paper §IV-B 1.2).
    pub report_jitter_s: f64,
    /// Whether to synthesize the accelerometer track.
    pub include_accel: bool,
    /// Accelerometer rate (75 Hz on the prototype).
    pub accel_rate: f64,
    /// Baseline-drift magnitude in systolic-amplitude units.
    pub drift_magnitude: f64,
    /// Rate of burst-noise events (contact loss, cable glitches) per
    /// second. 0 (the default) disables burst noise entirely and draws
    /// nothing from the RNG, keeping existing sessions bit-identical.
    pub burst_rate_hz: f64,
    /// Peak magnitude of burst noise in systolic-amplitude units.
    pub burst_magnitude: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            sample_rate: 100.0,
            pre_roll_s: 1.2,
            post_roll_s: 1.5,
            report_jitter_s: 0.10,
            include_accel: true,
            accel_rate: 75.0,
            drift_magnitude: 0.5,
            burst_rate_hz: 0.0,
            burst_magnitude: 2.5,
        }
    }
}

/// Specification of one entry to synthesize. `typist` supplies the
/// physiology (whose wrist produces the artifacts); `cadence` supplies
/// the typing rhythm — they differ only in an emulating attack, where
/// the attacker imitates the victim's observable behaviour but cannot
/// imitate their vasculature.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EntrySpec<'a> {
    pub typist: &'a Subject,
    pub cadence: &'a Subject,
    pub mode: HandMode,
}

/// Synthesizes one complete recording.
pub(crate) fn synthesize_entry(
    spec: EntrySpec<'_>,
    pin: &Pin,
    watch_hand: &[bool],
    channels: &[ChannelInfo],
    session: &SessionConfig,
    rng: &mut StdRng,
) -> Recording {
    let _span = p2auth_obs::span!("sim.synthesize");
    p2auth_obs::counter!("sim.recordings").incr();
    let rate = session.sample_rate;
    let digits = pin.digits();
    assert_eq!(watch_hand.len(), digits.len(), "watch_hand per digit");

    // --- keystroke touch times --------------------------------------
    let mut touch_times = Vec::with_capacity(digits.len());
    let mut t = session.pre_roll_s + normal(rng, 0.0, 0.08).abs();
    for _ in digits {
        touch_times.push(t);
        t +=
            (spec.cadence.inter_key_s + normal(rng, 0.0, spec.cadence.inter_key_jitter_s)).max(0.4);
    }
    let duration = touch_times.last().expect("non-empty PIN") + session.post_roll_s;
    let n = (duration * rate).round() as usize;

    // --- shared physical processes ----------------------------------
    // One pulse train and one motion buffer, scaled per channel, so all
    // channels observe the same underlying physiology.
    let base_pulse = pulse_train(spec.typist, n, rate, rng);
    let mut base_motion = vec![0.0_f64; n];
    add_motion_events(&mut base_motion, rate, spec.typist, rng);
    // One jitter draw per keystroke, shared across channels (the
    // behavioural component)...
    let jitters: Vec<EventJitter> = digits
        .iter()
        .map(|_| EventJitter::draw(spec.typist, rng))
        .collect();
    // ...plus an independent per-(keystroke, module-placement) contact
    // jitter: the two sensor modules press on the skin independently,
    // so their amplitude fluctuations decorrelate. This is why adding
    // channels helps (paper Fig. 13a) even though the behaviour is
    // common-mode.
    let contact_amp_sigma = 0.14;
    let placements = [Placement::Radial, Placement::Ulnar, Placement::Dorsal];
    let contact: Vec<[f64; 3]> = digits
        .iter()
        .map(|_| core::array::from_fn(|_| normal(rng, 0.0, contact_amp_sigma).exp()))
        .collect();
    let placement_idx = |p: Placement| placements.iter().position(|&q| q == p).expect("known");

    // --- per-channel assembly ----------------------------------------
    let mut ppg = Vec::with_capacity(channels.len());
    for &info in channels {
        let p_amp = pulse_amplitude(info);
        let motion_scale = match info.wavelength {
            Wavelength::Infrared => 1.0,
            Wavelength::Red => 0.8,
            Wavelength::Green => 0.72,
        };
        let mut ch: Vec<f64> = base_pulse.iter().map(|v| v * p_amp).collect();
        for (m, b) in ch.iter_mut().zip(&base_motion) {
            *m += motion_scale * b;
        }
        for (k, (&d, &by_watch)) in digits.iter().zip(watch_hand).enumerate() {
            if by_watch {
                add_keystroke_artifact_scaled(
                    spec.typist,
                    d,
                    info,
                    &mut ch,
                    rate,
                    touch_times[k],
                    &jitters[k],
                    contact[k][placement_idx(info.placement)],
                );
            }
        }
        add_baseline_drift(&mut ch, rate, session.drift_magnitude, rng);
        add_white_noise(&mut ch, noise_sigma(info), rng);
        if session.burst_rate_hz > 0.0 {
            add_burst_noise(
                &mut ch,
                rate,
                session.burst_rate_hz,
                session.burst_magnitude,
                rng,
            );
        }
        ppg.push(ch);
    }

    // --- timestamps ----------------------------------------------------
    let clamp = |idx: f64| -> usize { idx.round().clamp(0.0, (n - 1) as f64) as usize };
    let true_key_times: Vec<usize> = touch_times.iter().map(|&t| clamp(t * rate)).collect();
    let reported_key_times: Vec<usize> = touch_times
        .iter()
        .map(|&t| {
            let jitter = rng.gen_range(-session.report_jitter_s..=session.report_jitter_s);
            clamp((t + jitter) * rate)
        })
        .collect();

    // --- accelerometer -------------------------------------------------
    let accel = if session.include_accel {
        let watch_touches: Vec<f64> = touch_times
            .iter()
            .zip(watch_hand)
            .filter(|(_, &w)| w)
            .map(|(&t, _)| t)
            .collect();
        Some(accel_track(
            spec.typist,
            duration,
            session.accel_rate,
            &watch_touches,
            rng,
        ))
    } else {
        None
    };

    Recording {
        user: UserId(spec.typist.id.0),
        sample_rate: rate,
        ppg,
        channels: channels.to_vec(),
        accel,
        pin_entered: pin.clone(),
        reported_key_times,
        true_key_times,
        watch_hand: watch_hand.to_vec(),
        hand_mode: spec.mode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::standard_layout;
    use crate::rng::rng_for;

    fn make(mode: HandMode, watch: &[bool], seed: u64) -> Recording {
        let s = Subject::sample(9, 0);
        let pin = Pin::new("1628").unwrap();
        synthesize_entry(
            EntrySpec {
                typist: &s,
                cadence: &s,
                mode,
            },
            &pin,
            watch,
            &standard_layout(4),
            &SessionConfig::default(),
            &mut rng_for(seed, &[]),
        )
    }

    #[test]
    fn recording_is_structurally_valid() {
        let rec = make(HandMode::OneHanded, &[true; 4], 1);
        assert_eq!(rec.validate(), Ok(()));
        assert_eq!(rec.num_channels(), 4);
        assert_eq!(rec.reported_key_times.len(), 4);
        assert!(rec.duration_s() > 4.0 && rec.duration_s() < 10.0);
    }

    #[test]
    fn reported_times_jittered_but_close() {
        let rec = make(HandMode::OneHanded, &[true; 4], 2);
        for (r, t) in rec.reported_key_times.iter().zip(&rec.true_key_times) {
            let err = (*r as i64 - *t as i64).abs();
            assert!(err <= 11, "reported {r} vs true {t}");
        }
    }

    #[test]
    fn keystroke_energy_present_only_for_watch_hand() {
        let rec = make(HandMode::TwoHanded, &[true, false, true, false], 3);
        let ch = &rec.ppg[0];
        // Mean-removed window energy, so drift offsets do not dominate
        // (the pipeline's detrending plays this role for real).
        let energy_at = |t: usize| -> f64 {
            let lo = t.saturating_sub(5);
            let hi = (t + 45).min(ch.len());
            let w = &ch[lo..hi];
            let m = w.iter().sum::<f64>() / w.len() as f64;
            w.iter().map(|v| (v - m) * (v - m)).sum()
        };
        let e0 = energy_at(rec.true_key_times[0]);
        let e1 = energy_at(rec.true_key_times[1]);
        assert!(e0 > 2.0 * e1, "watch-hand {e0} vs other-hand {e1}");
    }

    #[test]
    fn deterministic_given_rng() {
        let a = make(HandMode::OneHanded, &[true; 4], 5);
        let b = make(HandMode::OneHanded, &[true; 4], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn burst_noise_rides_on_top_of_the_clean_session() {
        let s = Subject::sample(9, 2);
        let pin = Pin::new("1628").unwrap();
        let spec = EntrySpec {
            typist: &s,
            cadence: &s,
            mode: HandMode::OneHanded,
        };
        let bursty_cfg = SessionConfig {
            burst_rate_hz: 1.0,
            ..Default::default()
        };
        let bursty = synthesize_entry(
            spec,
            &pin,
            &[true; 4],
            &standard_layout(4),
            &bursty_cfg,
            &mut rng_for(7, &[]),
        );
        assert_eq!(bursty.validate(), Ok(()));
        // Same seed without bursts: the burst draws are gated, so the
        // clean session is the exact baseline the bursts ride on.
        let clean = synthesize_entry(
            spec,
            &pin,
            &[true; 4],
            &standard_layout(4),
            &SessionConfig::default(),
            &mut rng_for(7, &[]),
        );
        assert_ne!(bursty.ppg, clean.ppg, "bursts must add energy");
        // Touch times are drawn before the channel loop, so they are
        // unaffected by the extra burst draws.
        assert_eq!(bursty.true_key_times, clean.true_key_times);
    }

    #[test]
    fn accel_optional() {
        let s = Subject::sample(9, 1);
        let pin = Pin::new("5094").unwrap();
        let session = SessionConfig {
            include_accel: false,
            ..Default::default()
        };
        let rec = synthesize_entry(
            EntrySpec {
                typist: &s,
                cadence: &s,
                mode: HandMode::OneHanded,
            },
            &pin,
            &[true; 4],
            &standard_layout(2),
            &session,
            &mut rng_for(6, &[]),
        );
        assert!(rec.accel.is_none());
    }
}
