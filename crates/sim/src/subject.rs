//! Simulated subjects: the per-user physiological and behavioural
//! parameters that make keystroke-induced PPG measurements
//! person-specific.

use crate::rng::{normal, rng_for};
use p2auth_core::types::UserId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-key artifact response of one subject: how tapping a specific key
/// deforms this person's wrist vasculature (the paper's Fig. 3 shows
/// these per-key patterns for one volunteer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyResponse {
    /// Amplitude multiplier of the oscillatory artifact component.
    pub gain: f64,
    /// Multiplier on the subject's base artifact frequency.
    pub freq_mod: f64,
    /// Multiplier on the damping rate.
    pub damping_mod: f64,
    /// Phase offset of the oscillation (radians).
    pub phase: f64,
    /// Amplitude of the slower "pressure" lobe relative to the
    /// oscillation amplitude (negative: blood is squeezed out).
    pub second_lobe: f64,
    /// Delay of the pressure lobe after artifact onset (seconds).
    pub second_delay_s: f64,
    /// Key-specific addition to the artifact latency (seconds).
    pub latency_s: f64,
}

/// A simulated volunteer: pulse morphology, keystroke-artifact
/// physiology, per-key responses and typing habits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subject {
    /// Identity within the population.
    pub id: UserId,
    // --- cardiac -----------------------------------------------------
    /// Heart rate (Hz, beats per second).
    pub heart_rate_hz: f64,
    /// Relative beat-to-beat period jitter (heart-rate variability).
    pub hrv_sigma: f64,
    /// Systolic lobe amplitude (the unit of the amplitude budget).
    pub sys_amp: f64,
    /// Systolic lobe width (seconds).
    pub sys_width_s: f64,
    /// Dicrotic lobe amplitude.
    pub dic_amp: f64,
    /// Dicrotic delay after the systolic peak (seconds).
    pub dic_delay_s: f64,
    /// Dicrotic lobe width (seconds).
    pub dic_width_s: f64,
    /// Respiration frequency (Hz).
    pub resp_freq_hz: f64,
    /// Respiratory amplitude modulation depth.
    pub resp_amp: f64,
    // --- keystroke artifact physiology -------------------------------
    /// Base artifact amplitude relative to the systolic amplitude
    /// (keystrokes "produce more pronounced peaks or troughs ... than
    /// the heartbeat", paper §III-B).
    pub artifact_gain: f64,
    /// Base oscillation frequency of the artifact (Hz).
    pub artifact_freq_hz: f64,
    /// Exponential damping rate (1/s).
    pub artifact_damping: f64,
    /// Neuromuscular latency from touch to vascular response (seconds).
    pub artifact_latency_s: f64,
    /// Behavioural stability: per-event multiplicative jitter sigma.
    /// Small for the paper's "stable" volunteers (e.g. volunteer 8),
    /// large for those whose "additional actions introduce ... noise"
    /// (volunteer 11).
    pub stability_sigma: f64,
    /// Rate (events/second) of spurious non-keystroke wrist motions.
    pub extra_motion_rate_hz: f64,
    /// Per-key artifact responses, indexed by digit.
    pub key_responses: [KeyResponse; 10],
    // --- typing behaviour --------------------------------------------
    /// Habitual inter-keystroke interval (seconds; paper average 1.1 s).
    pub inter_key_s: f64,
    /// Inter-keystroke timing jitter (seconds).
    pub inter_key_jitter_s: f64,
    /// Watch-side reach boundary for two-handed typing (see
    /// [`crate::layout::watch_hand_presses`]).
    pub two_hand_boundary: f64,
    /// Accelerometer artifact scale (wrist stays nearly still while
    /// typing, so this is small — the basis of the paper's Fig. 12).
    pub accel_artifact_scale: f64,
    /// Habitual axis mix of the keystroke micro-motion. The ranges are
    /// deliberately narrow and overlapping across subjects: wrist
    /// micro-motion carries far less identity than vasculature, which
    /// is why accelerometer-based authentication resists attacks worse.
    pub accel_mix: [f64; 3],
    /// Dominant frequency of the accel transient (Hz).
    pub accel_freq_hz: f64,
    /// Damping of the accel transient (1/s).
    pub accel_damping: f64,
}

impl Subject {
    /// Samples a subject deterministically from `(population_seed,
    /// index)`.
    pub fn sample(population_seed: u64, index: u32) -> Self {
        let mut rng = rng_for(population_seed, &[0x5b_1ec7, index as u64]);
        let key_responses = core::array::from_fn(|_| sample_key_response(&mut rng));
        Self {
            id: UserId(index),
            heart_rate_hz: rng.gen_range(0.95..1.55),
            hrv_sigma: rng.gen_range(0.01..0.05),
            sys_amp: 1.0,
            sys_width_s: rng.gen_range(0.08..0.13),
            dic_amp: rng.gen_range(0.15..0.45),
            dic_delay_s: rng.gen_range(0.24..0.38),
            dic_width_s: rng.gen_range(0.10..0.17),
            resp_freq_hz: rng.gen_range(0.18..0.35),
            resp_amp: rng.gen_range(0.03..0.10),
            artifact_gain: rng.gen_range(1.6..3.2),
            artifact_freq_hz: rng.gen_range(2.5..8.0),
            artifact_damping: rng.gen_range(5.0..12.0),
            artifact_latency_s: rng.gen_range(0.02..0.07),
            stability_sigma: rng.gen_range(0.04..0.16),
            extra_motion_rate_hz: rng.gen_range(0.0..0.10),
            key_responses,
            inter_key_s: normal(&mut rng, 1.1, 0.12).clamp(0.8, 1.5),
            inter_key_jitter_s: rng.gen_range(0.03..0.10),
            two_hand_boundary: rng.gen_range(0.45..0.80),
            accel_artifact_scale: rng.gen_range(0.12..0.35),
            accel_mix: [
                rng.gen_range(0.3..1.0),
                rng.gen_range(0.3..1.0),
                rng.gen_range(0.05..0.35),
            ],
            accel_freq_hz: rng.gen_range(4.0..10.0),
            accel_damping: rng.gen_range(8.0..16.0),
        }
    }

    /// The per-key response for `digit`.
    ///
    /// # Panics
    ///
    /// Panics if `digit > 9`.
    pub fn key_response(&self, digit: u8) -> &KeyResponse {
        &self.key_responses[usize::from(digit)]
    }

    /// Returns this subject as they present `weeks` after enrollment.
    ///
    /// The paper's 8-week preliminary study (§III-B) found that "the
    /// PPG measurements maintain a consistent pattern over time,
    /// enabling to extract robust biometric features and avoid
    /// frequent updating" — i.e. long-term drift exists but is small.
    /// We model it as a slow deterministic walk of the artifact
    /// parameters (≈ 0.3 % per week on gain/frequency, slight typing-
    /// rhythm drift), far below the inter-user separation.
    pub fn aged(&self, weeks: f64) -> Subject {
        assert!(
            weeks >= 0.0 && weeks.is_finite(),
            "weeks must be non-negative"
        );
        let mut out = self.clone();
        // Deterministic per-subject drift directions derived from the
        // identity, so ageing is reproducible.
        let mut rng = rng_for(self.id.0 as u64, &[0xa6ed]);
        let dir = |rng: &mut StdRng| rng.gen_range(-1.0_f64..1.0);
        let rate = 0.003; // ≈0.3 % per week
        out.artifact_gain *= 1.0 + rate * weeks * dir(&mut rng);
        out.artifact_freq_hz *= 1.0 + rate * weeks * dir(&mut rng);
        out.artifact_damping *= 1.0 + rate * weeks * dir(&mut rng);
        out.inter_key_s = (out.inter_key_s + 0.004 * weeks * dir(&mut rng)).clamp(0.8, 1.5);
        out.heart_rate_hz =
            (out.heart_rate_hz * (1.0 + 0.002 * weeks * dir(&mut rng))).clamp(0.9, 1.6);
        out
    }
}

fn sample_key_response(rng: &mut StdRng) -> KeyResponse {
    KeyResponse {
        gain: rng.gen_range(0.65..1.55),
        freq_mod: rng.gen_range(0.78..1.25),
        damping_mod: rng.gen_range(0.75..1.30),
        phase: rng.gen_range(0.0..std::f64::consts::TAU),
        second_lobe: -rng.gen_range(0.25..0.85),
        second_delay_s: rng.gen_range(0.10..0.22),
        latency_s: rng.gen_range(0.0..0.04),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(Subject::sample(7, 3), Subject::sample(7, 3));
    }

    #[test]
    fn different_indices_differ() {
        let a = Subject::sample(7, 0);
        let b = Subject::sample(7, 1);
        assert_ne!(a, b);
        assert_ne!(a.artifact_freq_hz, b.artifact_freq_hz);
    }

    #[test]
    fn parameters_in_physiological_ranges() {
        for i in 0..50 {
            let s = Subject::sample(99, i);
            assert!(
                (0.9..1.6).contains(&s.heart_rate_hz),
                "HR {}",
                s.heart_rate_hz
            );
            assert!(
                s.artifact_gain > 1.0,
                "artifacts must exceed pulse amplitude"
            );
            assert!((0.8..=1.5).contains(&s.inter_key_s));
            assert!(s.key_responses.iter().all(|k| k.gain > 0.0));
            assert!(s.key_responses.iter().all(|k| k.second_lobe < 0.0));
        }
    }

    #[test]
    fn per_key_responses_differ_within_subject() {
        let s = Subject::sample(11, 0);
        let r1 = s.key_response(1);
        let r9 = s.key_response(9);
        assert!((r1.gain - r9.gain).abs() > 1e-6 || (r1.freq_mod - r9.freq_mod).abs() > 1e-6);
    }
}
