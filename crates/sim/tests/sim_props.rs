//! Property tests for the simulator: every recording it produces, for
//! any PIN / mode / nonce / layout, must satisfy the structural
//! invariants the pipeline relies on.

use p2auth_core::types::{HandMode, Pin};
use p2auth_sim::channel::standard_layout;
use p2auth_sim::{Population, PopulationConfig, SessionConfig};
use proptest::prelude::*;

fn arb_pin() -> impl Strategy<Value = Pin> {
    prop::collection::vec(0_u8..10, 4..=6).prop_map(|ds| {
        let s: String = ds.iter().map(|d| char::from(b'0' + d)).collect();
        Pin::new(&s).expect("digits form a valid PIN")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_entry_is_structurally_valid(
        pin in arb_pin(),
        user in 0_usize..4,
        nonce in 0_u64..1000,
        one_handed in any::<bool>(),
        channels in 1_usize..=6,
        seed in any::<u64>(),
    ) {
        let pop = Population::generate(&PopulationConfig {
            num_users: 4,
            seed,
            channels: standard_layout(channels),
        });
        let mode = if one_handed { HandMode::OneHanded } else { HandMode::TwoHanded };
        let rec = pop.record_entry(user, &pin, mode, &SessionConfig::default(), nonce);
        prop_assert_eq!(rec.validate(), Ok(()));
        prop_assert_eq!(rec.num_channels(), channels);
        prop_assert_eq!(rec.pin_entered.clone(), pin);
        // Keystroke times strictly increasing.
        for w in rec.true_key_times.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // One-handed: every keystroke by the watch hand.
        if one_handed {
            prop_assert!(rec.watch_hand.iter().all(|&b| b));
        } else {
            let count = rec.watch_hand.iter().filter(|&&b| b).count();
            prop_assert!(count >= 2 && count < rec.watch_hand.len().max(3));
        }
        // Finite samples everywhere.
        for c in &rec.ppg {
            prop_assert!(c.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn recordings_are_deterministic_in_all_inputs(
        pin in arb_pin(),
        nonce in 0_u64..100,
        seed in any::<u64>(),
    ) {
        let cfg = PopulationConfig { num_users: 2, seed, ..Default::default() };
        let a = Population::generate(&cfg)
            .record_entry(0, &pin, HandMode::OneHanded, &SessionConfig::default(), nonce);
        let b = Population::generate(&cfg)
            .record_entry(0, &pin, HandMode::OneHanded, &SessionConfig::default(), nonce);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn resampled_recordings_stay_valid(
        rate in 20.0_f64..120.0,
        nonce in 0_u64..50,
    ) {
        let pop = Population::generate(&PopulationConfig { num_users: 2, seed: 9, ..Default::default() });
        let pin = Pin::new("1628").expect("valid");
        let rec = pop.record_entry(0, &pin, HandMode::OneHanded, &SessionConfig::default(), nonce);
        let res = rec.resample(rate);
        prop_assert_eq!(res.validate(), Ok(()));
        prop_assert!((res.duration_s() - rec.duration_s()).abs() < 0.2);
    }

    #[test]
    fn emulating_attack_keeps_victim_pin_and_split_shape(
        pin in arb_pin(),
        nonce in 0_u64..50,
        seed in any::<u64>(),
    ) {
        let pop = Population::generate(&PopulationConfig { num_users: 3, seed, ..Default::default() });
        let atk = pop.record_emulating_attack(1, 0, &pin, HandMode::TwoHanded, &SessionConfig::default(), nonce);
        prop_assert_eq!(atk.validate(), Ok(()));
        prop_assert_eq!(atk.pin_entered, pin);
        prop_assert_eq!(atk.user.0, 1, "attack recording labelled with the attacker");
    }
}
