//! Differential suite pinning the opt-in `f32-lane` fused scorer
//! against the f64 oracle.
//!
//! ```text
//! P2AUTH_ORACLE_SEED=0xdeadbeef P2AUTH_F32_CASES=50 \
//!     cargo run -p p2auth-verify --features f32-lane --bin f32_suite
//! ```
//!
//! Each case fits a fresh MiniRocket on a random shape, folds random
//! ridge-like weights into both scorers, and requires every score to
//! agree within `REL_TOL` relative error (the bound stated in the
//! rocket crate's `f32-lane` feature contract). Echoes the seed so CI
//! failures replay exactly; exits non-zero on any divergence.

use p2auth_rocket::{
    ConvScratch, ConvScratchF32, FusedScorer, FusedScorerF32, MiniRocket, MiniRocketConfig,
    MultiSeries,
};
use p2auth_verify::gen::SplitMix64;
use p2auth_verify::seed_from_env;

/// Relative-error bound of the f32 lane against the f64 oracle.
const REL_TOL: f64 = 1e-4;
/// Probe series scored per fitted case.
const PROBES: usize = 8;

/// Smooth pulse-like series with seeded jitter — the scorer's numeric
/// behaviour is what is under test, not segmentation, so any smooth
/// waveform in a sane amplitude range exercises it.
fn synth_series(rng: &mut SplitMix64, len: usize, channels: usize) -> MultiSeries {
    let tau = std::f64::consts::TAU;
    let chans: Vec<Vec<f64>> = (0..channels)
        .map(|_| {
            let phase = rng.f64_in(0.0, tau);
            let amp = rng.f64_in(0.5, 2.0);
            (0..len)
                .map(|i| {
                    let t = i as f64 / 100.0;
                    amp * (tau * 1.3 * t + phase).sin()
                        + 0.3 * (tau * 6.0 * t + 2.0 * phase).sin()
                        + 0.05 * rng.f64_in(-1.0, 1.0)
                })
                .collect()
        })
        .collect();
    MultiSeries::new(chans).expect("well-formed series")
}

fn main() {
    let seed = seed_from_env();
    let cases: usize = std::env::var("P2AUTH_F32_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(40);
    eprintln!("running f32-lane differential suite: seed={seed:#x} cases={cases}");
    let mut rng = SplitMix64::new(seed);
    let mut worst = 0.0_f64;
    let mut failures = 0_usize;
    for case in 0..cases {
        let len = rng.usize_in(16, 120);
        let channels = rng.usize_in(1, 3);
        let num_features = 84 * rng.usize_in(1, 8);
        let train: Vec<MultiSeries> = (0..10)
            .map(|_| synth_series(&mut rng, len, channels))
            .collect();
        let cfg = MiniRocketConfig {
            num_features,
            seed: rng.next_u64(),
            ..MiniRocketConfig::default()
        };
        let rocket = match MiniRocket::fit(&cfg, &train) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("case {case}: fit failed ({e}), skipping shape {len}x{channels}");
                continue;
            }
        };
        let dim = rocket.num_output_features();
        let weights: Vec<f64> = (0..dim).map(|_| rng.f64_in(-1.0, 1.0)).collect();
        let intercept = rng.f64_in(-0.5, 0.5);
        let oracle = FusedScorer::new(&rocket, &weights, intercept);
        let lane = FusedScorerF32::from_f64(&oracle);
        let mut scratch = ConvScratch::new(len);
        let mut scratch32 = ConvScratchF32::new(len);
        for probe in 0..PROBES {
            let s = synth_series(&mut rng, len, channels);
            let want = oracle.score(&s, &mut scratch);
            let got = f64::from(lane.score(&s, &mut scratch32));
            let rel = (got - want).abs() / want.abs().max(1.0);
            worst = worst.max(rel);
            if rel > REL_TOL {
                failures += 1;
                println!(
                    "DIVERGENCE [case {case} probe {probe}] shape {len}x{channels} \
                     features {dim}: f64 {want:.9e} vs f32 {got:.9e} (rel {rel:.3e})"
                );
            }
        }
    }
    println!("f32-lane suite: {cases} cases, worst relative error {worst:.3e}");
    if failures > 0 {
        eprintln!(
            "{failures} divergences; replay with: P2AUTH_ORACLE_SEED={seed:#x} \
             P2AUTH_F32_CASES={cases} cargo run -p p2auth-verify \
             --features f32-lane --bin f32_suite"
        );
        std::process::exit(1);
    }
}
