//! Standalone differential-suite runner.
//!
//! ```text
//! P2AUTH_ORACLE_SEED=0xdeadbeef P2AUTH_ORACLE_CASES=1000 oracle_suite
//! ```
//!
//! Echoes the seed in its output so any CI failure can be replayed
//! exactly; exits non-zero when any kernel diverges from its oracle.

use p2auth_verify::{run_suite, seed_from_env};

fn main() {
    let seed = seed_from_env();
    let cases: usize = std::env::var("P2AUTH_ORACLE_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1000);
    eprintln!("running differential oracle suite: seed={seed:#x} cases/kernel={cases}");
    let report = run_suite(seed, cases);
    println!("{}", report.summary());
    for d in &report.divergences {
        println!("DIVERGENCE [{} case {}] {}", d.kernel, d.case, d.detail);
    }
    if !report.is_clean() {
        eprintln!(
            "replay with: P2AUTH_ORACLE_SEED={seed:#x} P2AUTH_ORACLE_CASES={cases} \
             cargo run -p p2auth-verify --bin oracle_suite"
        );
        std::process::exit(1);
    }
}
