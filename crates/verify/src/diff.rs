//! Differential checks: optimized kernel vs. naive oracle.
//!
//! Each `diff_*` function runs one kernel and its [`crate::oracle`]
//! reference on the same input and returns `Some(description)` on
//! divergence, `None` on agreement. [`run_suite`] drives all of them
//! over seeded adversarial inputs from [`crate::gen`] — including
//! no-panic lanes on NaN/Inf-contaminated signals — and collects every
//! divergence into a [`SuiteReport`].
//!
//! Tolerances are derived from backward-error bounds, not guessed: two
//! correct solvers may disagree by roughly `κ · ε · scale` (condition
//! number × machine epsilon × data magnitude), while a genuine bug
//! shows up at the scale of the data itself.

use crate::gen::{adversarial_signal, SignalClass, SplitMix64};
use crate::oracle;
use p2auth_dsp::{detrend, energy, median, normalize, peaks, resample, savgol, stats};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One disagreement between a kernel and its oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Kernel family (`"median"`, `"savgol"`, …).
    pub kernel: &'static str,
    /// Case number within the kernel's lane (for replay).
    pub case: usize,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

/// Outcome of a full differential run.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Seed the adversarial generator was started from.
    pub seed: u64,
    /// Cases executed per kernel lane.
    pub cases_per_kernel: usize,
    /// Every recorded disagreement (empty on a clean run).
    pub divergences: Vec<Divergence>,
}

impl SuiteReport {
    /// True when no kernel diverged from its oracle.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// One-line summary suitable for CI logs.
    pub fn summary(&self) -> String {
        format!(
            "oracle suite: seed={:#x} cases/kernel={} divergences={}",
            self.seed,
            self.cases_per_kernel,
            self.divergences.len()
        )
    }
}

/// Largest finite magnitude in `x`, floored at 1 (tolerance scale).
fn scale_of(x: &[f64]) -> f64 {
    x.iter()
        .filter(|v| v.is_finite())
        .fold(1.0_f64, |m, v| m.max(v.abs()))
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn slices_close(got: &[f64], want: &[f64], tol: f64) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("length {} vs oracle {}", got.len(), want.len()));
    }
    let d = max_abs_diff(got, want);
    if d.is_nan() || d > tol {
        return Err(format!("max |Δ| = {d:e} > tol {tol:e}"));
    }
    Ok(())
}

/// Runs `f`, mapping a panic to `Some(message)`.
///
/// Used by the contaminated no-panic lanes: the assertion there is not
/// value agreement but the absence of any panic.
pub fn panics<T>(f: impl FnOnce() -> T) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(_) => None,
        Err(e) => Some(
            e.downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| e.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into()),
        ),
    }
}

/// `median_filter` + `median_of` vs. explicit-padding oracle.
pub fn diff_median(x: &[f64], window: usize) -> Option<String> {
    let got = median::median_filter(x, window);
    let want = oracle::median_filter_ref(x, window);
    slices_close(&got, &want, 0.0)
        .err()
        .map(|e| format!("median_filter(len={}, w={window}): {e}", x.len()))
}

/// `quantile` vs. sorted-by-total-order linear interpolation.
pub fn diff_quantile(x: &[f64], q: f64) -> Option<String> {
    if x.is_empty() {
        return None;
    }
    let got = stats::quantile(x, q);
    let mut v = x.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = q * (v.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    let want = if i + 1 < v.len() {
        v[i] * (1.0 - frac) + v[i + 1] * frac
    } else {
        v[i]
    };
    let tol = 1e-12 * scale_of(x);
    ((got - want).abs() > tol || got.is_nan() != want.is_nan())
        .then(|| format!("quantile(len={}, q={q}): {got} vs oracle {want}", x.len()))
}

/// `savgol_coeffs` (normal equations) vs. per-impulse QR fit.
pub fn diff_savgol_coeffs(window: usize, order: usize) -> Option<String> {
    let got = savgol::savgol_coeffs(window, order);
    let want = oracle::savgol_coeffs_ref(window, order);
    // Both solvers see the Gram conditioning (~t^{2·order} dynamic
    // range); 1e-6 is far above their joint rounding, far below a bug.
    slices_close(&got, &want, 1e-6)
        .err()
        .map(|e| format!("savgol_coeffs({window}, {order}): {e}"))
}

/// `savgol_filter` vs. per-window least-squares fit at every index.
pub fn diff_savgol_filter(x: &[f64], window: usize, order: usize) -> Option<String> {
    let got = savgol::savgol_filter(x, window, order);
    let want = oracle::savgol_filter_ref(x, window, order);
    let tol = 1e-6 * scale_of(x) * window as f64;
    slices_close(&got, &want, tol)
        .err()
        .map(|e| format!("savgol_filter(len={}, w={window}, o={order}): {e}", x.len()))
}

/// Banded-Cholesky `trend` vs. dense Gauss–Jordan oracle.
pub fn diff_trend(y: &[f64], lambda: f64) -> Option<String> {
    let got = detrend::trend(y, lambda);
    let want = oracle::trend_ref(y, lambda);
    // Two backward-stable solvers of a system with condition number
    // ~ 1 + 16λ² may differ by κ·ε·‖y‖.
    let kappa = 1.0 + 16.0 * lambda * lambda;
    let tol = (1e-9 * kappa).max(1e-9) * scale_of(y) * (y.len().max(1) as f64).sqrt();
    slices_close(&got, &want, tol)
        .err()
        .map(|e| format!("trend(len={}, λ={lambda}): {e}", y.len()))
}

/// `short_time_energy` + threshold vs. explicit frame enumeration.
pub fn diff_energy(x: &[f64], window: usize, hop: usize) -> Option<String> {
    let got = energy::short_time_energy(x, window, hop);
    let want = oracle::short_time_energy_ref(x, window, hop);
    let s = scale_of(x);
    let tol = 1e-9 * s * s * window as f64;
    if let Err(e) = slices_close(&got, &want, tol) {
        return Some(format!(
            "short_time_energy(len={}, w={window}, hop={hop}): {e}",
            x.len()
        ));
    }
    let gt = energy::half_mean_energy_threshold(x, window);
    let wt = oracle::half_mean_energy_threshold_ref(x, window);
    ((gt - wt).abs() > tol.max(1e-12) * (got.len().max(1) as f64))
        .then(|| format!("half_mean_energy_threshold: {gt} vs oracle {wt}"))
}

/// `energy_around` vs. explicit clamped-window oracle.
pub fn diff_energy_around(x: &[f64], center: usize, window: usize) -> Option<String> {
    if x.is_empty() {
        return None;
    }
    let got = energy::energy_around(x, center, window);
    let want = oracle::energy_around_ref(x, center, window);
    let s = scale_of(x);
    let tol = 1e-9 * s * s * window as f64;
    ((got - want).abs() > tol).then(|| {
        format!(
            "energy_around(len={}, c={center}, w={window}): {got} vs {want}",
            x.len()
        )
    })
}

/// Extremum scans vs. difference-sign oracle (exact index equality).
pub fn diff_peaks(x: &[f64]) -> Option<String> {
    let checks = [
        (
            "local_maxima",
            peaks::local_maxima(x),
            oracle::local_maxima_ref(x),
        ),
        (
            "local_minima",
            peaks::local_minima(x),
            oracle::local_minima_ref(x),
        ),
        (
            "local_extrema",
            peaks::local_extrema(x),
            oracle::local_extrema_ref(x),
        ),
    ];
    for (name, got, want) in checks {
        if got != want {
            return Some(format!(
                "{name}(len={}): {got:?} vs oracle {want:?}",
                x.len()
            ));
        }
    }
    None
}

/// Eq. (1) calibration search vs. brute-force oracle.
pub fn diff_calibrate(
    x: &[f64],
    approx: usize,
    before: usize,
    after: usize,
    w: usize,
) -> Option<String> {
    let got = peaks::calibrate_keystroke_asym(x, approx, before, after, w);
    let want = oracle::calibrate_keystroke_ref(x, approx, before, after, w);
    match (got, want) {
        (None, None) => None,
        (Some(g), Some((wi, ws))) => {
            let tol = 1e-9 * scale_of(x);
            (g.index != wi || (g.score - ws).abs() > tol).then(|| {
                format!(
                    "calibrate(approx={approx}, -{before}/+{after}, w={w}): \
                     ({}, {}) vs oracle ({wi}, {ws})",
                    g.index, g.score
                )
            })
        }
        (g, w_) => Some(format!(
            "calibrate(approx={approx}): {g:?} vs oracle {w_:?}"
        )),
    }
}

/// `resample_linear` vs. point-slope interpolation oracle.
pub fn diff_resample(x: &[f64], src_rate: f64, dst_rate: f64) -> Option<String> {
    let got = resample::resample_linear(x, src_rate, dst_rate);
    let want = oracle::resample_linear_ref(x, src_rate, dst_rate);
    let tol = 1e-9 * scale_of(x);
    slices_close(&got, &want, tol).err().map(|e| {
        format!(
            "resample_linear(len={}, {src_rate}→{dst_rate}): {e}",
            x.len()
        )
    })
}

/// `map_index` vs. oracle (exact).
pub fn diff_map_index(idx: usize, src_rate: f64, dst_rate: f64) -> Option<String> {
    let got = resample::map_index(idx, src_rate, dst_rate);
    let want = oracle::map_index_ref(idx, src_rate, dst_rate);
    (got != want).then(|| format!("map_index({idx}, {src_rate}→{dst_rate}): {got} vs {want}"))
}

/// `zscore` / `min_max` / `remove_mean` vs. compensated-sum oracles.
pub fn diff_normalize(x: &[f64]) -> Option<String> {
    let n = x.len() as f64;
    let s = scale_of(x);
    // Plain summation vs. Kahan: the means differ by ~n·ε·scale.
    let mean_gap = 4.0 * n * f64::EPSILON * s;
    {
        let got = normalize::zscore(x);
        let want = oracle::zscore_ref(x);
        // Z-scores are O(1), but near-constant signals amplify the mean
        // gap by 1/sd; bound 1/sd by the gap-to-sd ratio of the oracle.
        let sd = {
            let mean = x.iter().sum::<f64>() / n.max(1.0);
            (x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n.max(1.0)).sqrt()
        };
        // Right at the 1e-12 degenerate-variance cutoff the two
        // implementations may legitimately take different branches from
        // rounding alone; only compare outside that sliver.
        if !(1e-13..=1e-11).contains(&sd) {
            let tol = 1e-9 + mean_gap / sd.max(1e-12);
            if let Err(e) = slices_close(&got, &want, tol) {
                return Some(format!("zscore(len={}): {e}", x.len()));
            }
        }
    }
    {
        let got = normalize::min_max(x);
        let want = oracle::min_max_ref(x);
        if let Err(e) = slices_close(&got, &want, 1e-12) {
            return Some(format!("min_max(len={}): {e}", x.len()));
        }
    }
    {
        let mut got = x.to_vec();
        normalize::remove_mean(&mut got);
        let want = oracle::remove_mean_ref(x);
        if let Err(e) = slices_close(&got, &want, mean_gap.max(1e-12)) {
            return Some(format!("remove_mean(len={}): {e}", x.len()));
        }
    }
    None
}

fn odd_window(rng: &mut SplitMix64, max_half: usize) -> usize {
    2 * rng.usize_below(max_half + 1) + 1
}

/// Runs the full differential suite: for every kernel, `cases` seeded
/// adversarial finite-input equality checks plus `cases` contaminated
/// no-panic checks. Returns every divergence found.
///
/// The panic hook is suppressed for the duration of the run so the
/// intentional probe panics of the no-panic lanes do not spam stderr;
/// it is restored before returning.
pub fn run_suite(seed: u64, cases: usize) -> SuiteReport {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_suite_inner(seed, cases);
    std::panic::set_hook(prev_hook);
    report
}

fn run_suite_inner(seed: u64, cases: usize) -> SuiteReport {
    let mut div: Vec<Divergence> = Vec::new();
    let mut push = |kernel: &'static str, case: usize, d: Option<String>| {
        if let Some(detail) = d {
            div.push(Divergence {
                kernel,
                case,
                detail,
            });
        }
    };

    // ---- median (+ quantile, which shares the ordering fix) ----
    let mut rng = SplitMix64::new(seed ^ 0x6d65_6469);
    for case in 0..cases {
        let x = adversarial_signal(&mut rng, 300, SignalClass::Finite);
        let w = odd_window(&mut rng, 15);
        push("median", case, diff_median(&x, w));
        push("median", case, diff_quantile(&x, rng.unit_f64()));
        let c = adversarial_signal(&mut rng, 300, SignalClass::Contaminated);
        push(
            "median",
            case,
            panics(|| median::median_filter(&c, w)).map(|p| format!("panic: {p}")),
        );
        if !c.is_empty() {
            push(
                "median",
                case,
                panics(|| stats::quantile(&c, 0.5)).map(|p| format!("quantile panic: {p}")),
            );
        }
    }

    // ---- savgol ----
    let mut rng = SplitMix64::new(seed ^ 0x7361_7667);
    for case in 0..cases {
        let w = odd_window(&mut rng, 15);
        let o = rng.usize_below(w.min(7));
        push("savgol", case, diff_savgol_coeffs(w, o));
        let x = adversarial_signal(&mut rng, 200, SignalClass::Finite);
        push("savgol", case, diff_savgol_filter(&x, w, o));
        let c = adversarial_signal(&mut rng, 200, SignalClass::Contaminated);
        push(
            "savgol",
            case,
            panics(|| savgol::savgol_filter(&c, w, o)).map(|p| format!("panic: {p}")),
        );
    }

    // ---- detrend ----
    let mut rng = SplitMix64::new(seed ^ 0x6465_7472);
    for case in 0..cases {
        let y = adversarial_signal(&mut rng, 64, SignalClass::Finite);
        let lambda = match rng.usize_below(5) {
            0 => 0.0,
            1 => rng.f64_in(0.0, 1.0),
            2 => rng.f64_in(1.0, 50.0),
            3 => rng.f64_in(50.0, 500.0),
            _ => rng.f64_in(500.0, 1000.0),
        };
        push("detrend", case, diff_trend(&y, lambda));
        // Extreme-λ robustness: the λ→∞ limit must neither panic nor
        // produce non-finite output on finite input.
        let extreme = [1e8, 1e12, 1e150, 1e154, 1e200, 1e308][rng.usize_below(6)];
        match catch_unwind(AssertUnwindSafe(|| detrend::trend(&y, extreme))) {
            Err(_) => push(
                "detrend",
                case,
                Some(format!("trend(len={}, λ={extreme:e}) panicked", y.len())),
            ),
            Ok(t) => {
                if !t.iter().all(|v| v.is_finite()) {
                    push(
                        "detrend",
                        case,
                        Some(format!(
                            "trend(len={}, λ={extreme:e}) produced non-finite output",
                            y.len()
                        )),
                    );
                }
            }
        }
        let c = adversarial_signal(&mut rng, 64, SignalClass::Contaminated);
        push(
            "detrend",
            case,
            panics(|| detrend::detrend(&c, lambda)).map(|p| format!("panic: {p}")),
        );
    }

    // ---- energy ----
    let mut rng = SplitMix64::new(seed ^ 0x656e_6572);
    for case in 0..cases {
        let x = adversarial_signal(&mut rng, 300, SignalClass::Finite);
        let w = rng.usize_in(1, 40);
        let hop = rng.usize_in(1, 40);
        push("energy", case, diff_energy(&x, w, hop));
        push(
            "energy",
            case,
            diff_energy_around(&x, rng.usize_below(x.len().max(1) + 10), w),
        );
        let c = adversarial_signal(&mut rng, 300, SignalClass::Contaminated);
        push(
            "energy",
            case,
            panics(|| energy::short_time_energy(&c, w, hop)).map(|p| format!("panic: {p}")),
        );
    }

    // ---- peaks ----
    let mut rng = SplitMix64::new(seed ^ 0x7065_616b);
    for case in 0..cases {
        let x = adversarial_signal(&mut rng, 300, SignalClass::Finite);
        push("peaks", case, diff_peaks(&x));
        let approx = rng.usize_below(x.len().max(1) + 20);
        let before = rng.usize_below(40);
        let after = rng.usize_below(40);
        let w = rng.usize_below(40);
        push("peaks", case, diff_calibrate(&x, approx, before, after, w));
        let c = adversarial_signal(&mut rng, 300, SignalClass::Contaminated);
        push(
            "peaks",
            case,
            panics(|| peaks::calibrate_keystroke_asym(&c, approx, before, after, w))
                .map(|p| format!("panic: {p}")),
        );
    }

    // ---- resample ----
    let mut rng = SplitMix64::new(seed ^ 0x7265_7361);
    for case in 0..cases {
        let x = adversarial_signal(&mut rng, 300, SignalClass::Finite);
        let src = rng.f64_in(0.5, 2000.0);
        let dst = if rng.chance(0.2) {
            src // exercise the identity shortcut
        } else {
            rng.f64_in(0.5, 2000.0)
        };
        push("resample", case, diff_resample(&x, src, dst));
        push(
            "resample",
            case,
            diff_map_index(rng.usize_below(5000), src, dst),
        );
        let c = adversarial_signal(&mut rng, 300, SignalClass::Contaminated);
        push(
            "resample",
            case,
            panics(|| resample::resample_linear(&c, src, dst)).map(|p| format!("panic: {p}")),
        );
    }

    // ---- normalize ----
    let mut rng = SplitMix64::new(seed ^ 0x6e6f_726d);
    for case in 0..cases {
        let x = adversarial_signal(&mut rng, 300, SignalClass::Finite);
        push("normalize", case, diff_normalize(&x));
        let c = adversarial_signal(&mut rng, 300, SignalClass::Contaminated);
        push(
            "normalize",
            case,
            panics(|| {
                let _ = normalize::zscore(&c);
                let _ = normalize::min_max(&c);
                let mut m = c.clone();
                normalize::remove_mean(&mut m);
            })
            .map(|p| format!("panic: {p}")),
        );
    }

    SuiteReport {
        seed,
        cases_per_kernel: cases,
        divergences: div,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_kernels_produce_no_divergence() {
        let r = run_suite(0xfeed_beef, 40);
        assert!(
            r.is_clean(),
            "{}:\n{}",
            r.summary(),
            r.divergences
                .iter()
                .take(10)
                .map(|d| format!("  [{} case {}] {}", d.kernel, d.case, d.detail))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn panics_helper_reports_message() {
        let msg = panics(|| panic!("boom {}", 42));
        assert_eq!(msg.as_deref(), Some("boom 42"));
        assert!(panics(|| 1 + 1).is_none());
    }
}
