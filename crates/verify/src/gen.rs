//! Deterministic adversarial input generation.
//!
//! The differential suite needs reproducible randomness without pulling
//! in an RNG dependency (the crate must build with a bare `rustc`), so
//! this module carries a small SplitMix64 generator plus the signal
//! classes that historically break DSP code: empty and singleton
//! signals, constants, near-constants, ramps, impulse trains, extreme
//! amplitudes, subnormals, and NaN/Inf contamination.

/// SplitMix64: tiny, fast, and statistically solid for test-input
/// generation (Steele, Lea & Flood 2014). Not cryptographic.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1_u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)` (degenerate ranges return `lo`).
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }

    /// Uniform draw in `[0, n)`; returns 0 for `n == 0`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Uniform draw in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.usize_below(hi - lo + 1)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// Which signal classes a generator call may emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalClass {
    /// Finite values only — the oracle-equality lanes.
    Finite,
    /// Finite values plus NaN/Inf contamination — the no-panic lanes.
    Contaminated,
}

/// Draws one adversarial signal of length `0..=max_len`.
///
/// The class mix is weighted toward the degenerate shapes that break
/// windowed/recursive DSP code, not toward "realistic" PPG.
pub fn adversarial_signal(rng: &mut SplitMix64, max_len: usize, class: SignalClass) -> Vec<f64> {
    let shape = rng.usize_below(10);
    let len = match shape {
        // Degenerate lengths get their own lanes so they are hit often.
        0 => 0,
        1 => 1,
        2 => rng.usize_in(2, 4),
        _ => rng.usize_in(1, max_len.max(1)),
    };
    let mut x = match shape {
        3 => vec![rng.f64_in(-10.0, 10.0); len],
        4 => {
            // Near-constant: jitter far below and far above the 1e-12
            // degenerate-variance thresholds, never inside their band.
            let base = rng.f64_in(-5.0, 5.0);
            let scale = if rng.chance(0.5) { 1e-15 } else { 1e-9 };
            (0..len)
                .map(|i| base + scale * ((i * 37 % 11) as f64 - 5.0))
                .collect()
        }
        5 => {
            let slope = rng.f64_in(-3.0, 3.0);
            let intercept = rng.f64_in(-100.0, 100.0);
            (0..len).map(|i| intercept + slope * i as f64).collect()
        }
        6 => {
            // Impulse train on a flat baseline.
            let mut v = vec![rng.f64_in(-1.0, 1.0); len];
            let impulses = rng.usize_in(0, 4);
            for _ in 0..impulses {
                if len > 0 {
                    let at = rng.usize_below(len);
                    v[at] = rng.f64_in(-1e6, 1e6);
                }
            }
            v
        }
        7 => {
            // Extreme amplitudes: large but inside the validated 1e12
            // device bound, or subnormal-small.
            let scale = if rng.chance(0.5) { 1e12 } else { 1e-300 };
            (0..len).map(|_| scale * rng.f64_in(-1.0, 1.0)).collect()
        }
        8 => {
            let f = rng.f64_in(0.01, 0.9);
            let drift = rng.f64_in(-0.05, 0.05);
            (0..len)
                .map(|i| (i as f64 * f).sin() + drift * i as f64)
                .collect()
        }
        _ => (0..len).map(|_| rng.f64_in(-100.0, 100.0)).collect(),
    };
    if class == SignalClass::Contaminated && rng.chance(0.7) {
        let hits = rng.usize_in(1, 3);
        for _ in 0..hits {
            if x.is_empty() {
                break;
            }
            let at = rng.usize_below(x.len());
            x[at] = match rng.usize_below(4) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => -f64::NAN,
            };
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_draws_in_range() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn finite_class_is_finite() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..500 {
            let x = adversarial_signal(&mut rng, 200, SignalClass::Finite);
            assert!(x.iter().all(|v| v.is_finite()), "non-finite in {x:?}");
        }
    }

    #[test]
    fn degenerate_lengths_occur() {
        let mut rng = SplitMix64::new(11);
        let mut saw_empty = false;
        let mut saw_single = false;
        for _ in 0..200 {
            let x = adversarial_signal(&mut rng, 100, SignalClass::Finite);
            saw_empty |= x.is_empty();
            saw_single |= x.len() == 1;
        }
        assert!(saw_empty && saw_single);
    }
}
