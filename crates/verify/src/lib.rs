//! Reference-oracle correctness harness for the P²Auth DSP pipeline.
//!
//! The paper's accuracy claims rest on the preprocessing chain being
//! numerically faithful at every boundary, so this crate checks the
//! optimized kernels in `p2auth-dsp` against deliberately naive,
//! independently derived reference implementations:
//!
//! * [`oracle`] — O(n²)-is-fine reimplementations of every kernel
//!   (`median`, `savgol`, `detrend`, `energy`, `peaks`, `resample`,
//!   `normalize`) using different algorithms than the optimized crate
//!   (dense solvers, per-window least squares, explicit padding).
//! * [`gen`] — a dependency-free seeded generator of adversarial
//!   signals: empty/singleton, constants, near-constants, ramps,
//!   impulse trains, extreme amplitudes, subnormals, NaN/Inf.
//! * [`diff`] — differential checks and the [`diff::run_suite`] driver
//!   that executes equality lanes on finite inputs and no-panic lanes
//!   on contaminated ones.
//!
//! The library (and its `oracle-suite` binary) build with a bare
//! `rustc` — no external dependencies — so the full differential suite
//! runs even on machines without registry access. The proptest-based
//! integration tests in `tests/` add randomized shrinking on top for
//! networked CI. See DESIGN.md, "Numerical correctness & oracles".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod gen;
pub mod oracle;

pub use diff::{run_suite, Divergence, SuiteReport};

/// Seed used when `P2AUTH_ORACLE_SEED` is not set: a fixed value so
/// default runs are reproducible.
pub const DEFAULT_SEED: u64 = 0x5eed_0ca1_1b2a_7e5d;

/// Returns the differential-suite seed: `P2AUTH_ORACLE_SEED` from the
/// environment (decimal, or hex with a `0x` prefix), else
/// [`DEFAULT_SEED`]. Unparseable values fall back to the default.
pub fn seed_from_env() -> u64 {
    match std::env::var("P2AUTH_ORACLE_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = if let Some(hex) = raw.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                raw.parse()
            };
            parsed.unwrap_or(DEFAULT_SEED)
        }
        Err(_) => DEFAULT_SEED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_seed_parsing() {
        // Avoid mutating the process environment (other tests run in
        // parallel); exercise only the default path here.
        assert_eq!(DEFAULT_SEED, 0x5eed_0ca1_1b2a_7e5d);
        let _ = seed_from_env();
    }
}
