//! Deliberately naive reference implementations of the DSP kernels.
//!
//! Every function here restates its kernel's *documented semantics* in
//! the most literal form available — explicit padded buffers, dense
//! matrices, per-window least squares, O(n²) scans — with no sharing of
//! algorithmic shortcuts with `p2auth-dsp`. The optimized kernels are
//! property-tested against these oracles in [`crate::diff`]; a
//! divergence means one side is wrong, and the naive side is much
//! easier to audit.
//!
//! Conventions shared with the optimized crate:
//!
//! * NaN ordering follows [`f64::total_cmp`] wherever a kernel sorts
//!   (median, quantile), so contaminated inputs cannot panic.
//! * `trend` treats `λ² ≥ 1e13` (the point where `f64` rounding makes
//!   the pentadiagonal system indistinguishable from the limit, long
//!   before `λ²` overflows to infinity) as λ→∞: the least-squares
//!   straight line.

/// Median of a slice by full sort under [`f64::total_cmp`].
pub fn median_of_ref(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Sliding median via an explicitly materialized edge-replicated
/// padding buffer.
pub fn median_filter_ref(x: &[f64], window: usize) -> Vec<f64> {
    assert!(window % 2 == 1, "window must be odd");
    if x.is_empty() || window == 1 {
        return x.to_vec();
    }
    let half = window / 2;
    // Padded signal: half replicated samples on each side.
    let mut padded = Vec::with_capacity(x.len() + 2 * half);
    padded.extend(std::iter::repeat_n(x[0], half));
    padded.extend_from_slice(x);
    padded.extend(std::iter::repeat_n(*x.last().expect("non-empty"), half));
    (0..x.len())
        .map(|i| median_of_ref(&padded[i..i + window]))
        .collect()
}

/// Least-squares polynomial fit by modified Gram–Schmidt QR.
///
/// Fits `degree`-order coefficients `c` minimizing `‖A c − b‖` where
/// `A[i][j] = t[i]^j`, and returns the fitted value at `t = 0` (which
/// is `c[0]`).
fn poly_fit_at_zero(t: &[f64], b: &[f64], degree: usize) -> f64 {
    let cols = degree + 1;
    let mut q: Vec<Vec<f64>> = Vec::with_capacity(cols);
    let mut r = vec![vec![0.0_f64; cols]; cols];
    for j in 0..cols {
        // Column j of the design matrix: t^j.
        let mut v: Vec<f64> = t.iter().map(|&ti| ti.powi(j as i32)).collect();
        for (k, qk) in q.iter().enumerate() {
            let proj: f64 = qk.iter().zip(&v).map(|(p, w)| p * w).sum();
            r[k][j] = proj;
            for (vi, qi) in v.iter_mut().zip(qk) {
                *vi -= proj * qi;
            }
        }
        let norm: f64 = v.iter().map(|w| w * w).sum::<f64>().sqrt();
        r[j][j] = norm;
        for vi in v.iter_mut() {
            *vi /= norm;
        }
        q.push(v);
    }
    // c = R⁻¹ Qᵀ b by back substitution.
    let qtb: Vec<f64> = q
        .iter()
        .map(|qj| qj.iter().zip(b).map(|(p, w)| p * w).sum())
        .collect();
    let mut c = vec![0.0_f64; cols];
    for j in (0..cols).rev() {
        let mut acc = qtb[j];
        for k in j + 1..cols {
            acc -= r[j][k] * c[k];
        }
        c[j] = acc / r[j][j];
    }
    c[0]
}

/// Savitzky–Golay smoothing by per-window least squares: for every
/// output sample, fit a polynomial to the (edge-clamped) window values
/// at centred abscissae and evaluate it at the centre.
pub fn savgol_filter_ref(x: &[f64], window: usize, poly_order: usize) -> Vec<f64> {
    assert!(window % 2 == 1 && window > 0, "window must be odd");
    assert!(poly_order < window, "order must be < window");
    if x.is_empty() {
        return Vec::new();
    }
    let half = (window / 2) as i64;
    let n = x.len() as i64;
    let t: Vec<f64> = (-half..=half).map(|v| v as f64).collect();
    (0..n)
        .map(|i| {
            let b: Vec<f64> = (-half..=half)
                .map(|off| x[(i + off).clamp(0, n - 1) as usize])
                .collect();
            poly_fit_at_zero(&t, &b, poly_order)
        })
        .collect()
}

/// Savitzky–Golay coefficients recovered from the filter's linearity:
/// the coefficient for window position `j` is the per-window fit
/// applied to the `j`-th unit impulse.
pub fn savgol_coeffs_ref(window: usize, poly_order: usize) -> Vec<f64> {
    assert!(window % 2 == 1 && window > 0, "window must be odd");
    assert!(poly_order < window, "order must be < window");
    let half = (window / 2) as i64;
    let t: Vec<f64> = (-half..=half).map(|v| v as f64).collect();
    (0..window)
        .map(|j| {
            let mut e = vec![0.0; window];
            e[j] = 1.0;
            poly_fit_at_zero(&t, &e, poly_order)
        })
        .collect()
}

/// λ→∞ limit of smoothness-priors detrending: the least-squares line.
pub fn linear_fit_ref(y: &[f64]) -> Vec<f64> {
    let n = y.len();
    if n < 2 {
        return y.to_vec();
    }
    let nf = n as f64;
    let mean_t = (nf - 1.0) / 2.0;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (i, &v) in y.iter().enumerate() {
        let dt = i as f64 - mean_t;
        cov += dt * (v - mean_y);
        var += dt * dt;
    }
    let slope = cov / var;
    (0..n)
        .map(|i| mean_y + slope * (i as f64 - mean_t))
        .collect()
}

/// Smoothness-priors trend by dense Gauss–Jordan elimination on
/// `(I + λ² D₂ᵀ D₂) z = y`.
pub fn trend_ref(y: &[f64], lambda: f64) -> Vec<f64> {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be finite and >= 0"
    );
    let n = y.len();
    if n < 3 {
        return y.to_vec();
    }
    let l2 = lambda * lambda;
    if !(l2 < 1e13) {
        return linear_fit_ref(y);
    }
    let mut a = vec![vec![0.0_f64; n]; n];
    for (i, row) in a.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for k in 0..n - 2 {
        let idx = [k, k + 1, k + 2];
        let val = [1.0, -2.0, 1.0];
        for (&ip, &vp) in idx.iter().zip(&val) {
            for (&iq, &vq) in idx.iter().zip(&val) {
                a[ip][iq] += l2 * vp * vq;
            }
        }
    }
    let mut b = y.to_vec();
    // Gauss–Jordan with partial pivoting: reduce A all the way to the
    // identity (deliberately not the elimination+back-substitution of
    // the optimized crate's own dense reference).
    for col in 0..n {
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        for j in col..n {
            a[col][j] /= d;
        }
        b[col] /= d;
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = a[r][col];
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                a[r][j] -= f * a[col][j];
            }
            b[r] -= f * b[col];
        }
    }
    b
}

/// `y − trend_ref(y, λ)`.
pub fn detrend_ref(y: &[f64], lambda: f64) -> Vec<f64> {
    let t = trend_ref(y, lambda);
    y.iter().zip(&t).map(|(a, b)| a - b).collect()
}

/// Short-time energy by explicit frame enumeration.
pub fn short_time_energy_ref(x: &[f64], window: usize, hop: usize) -> Vec<f64> {
    assert!(window > 0 && hop > 0, "window and hop must be positive");
    let mut out = Vec::new();
    let mut start = 0_usize;
    loop {
        let Some(end) = start.checked_add(window) else {
            break;
        };
        if end > x.len() {
            break;
        }
        out.push(x[start..end].iter().map(|v| v * v).sum());
        start += hop;
    }
    out
}

/// Energy of the `window`-sample window containing `center`, slid
/// inward at the boundaries.
pub fn energy_around_ref(x: &[f64], center: usize, window: usize) -> f64 {
    assert!(window > 0, "window must be positive");
    assert!(!x.is_empty(), "empty signal");
    let start = center
        .saturating_sub(window / 2)
        .min(x.len().saturating_sub(window));
    let end = (start + window).min(x.len());
    x[start..end].iter().map(|v| v * v).sum()
}

/// Half the mean short-time energy (the paper's presence threshold).
pub fn half_mean_energy_threshold_ref(x: &[f64], window: usize) -> f64 {
    let e = short_time_energy_ref(x, window, window);
    if e.is_empty() {
        return 0.0;
    }
    0.5 * e.iter().sum::<f64>() / e.len() as f64
}

/// Local maxima via the sign sequence of consecutive differences: a
/// maximum is a `+` diff followed (across any zero-diff plateau) by a
/// `−` diff, reported at the plateau's first index. Endpoints are never
/// reported. NaN diffs break any pending rise.
pub fn local_maxima_ref(x: &[f64]) -> Vec<usize> {
    extrema_ref(x, 1.0)
}

/// Local minima; mirror image of [`local_maxima_ref`].
pub fn local_minima_ref(x: &[f64]) -> Vec<usize> {
    extrema_ref(x, -1.0)
}

/// All local extrema, sorted ascending.
pub fn local_extrema_ref(x: &[f64]) -> Vec<usize> {
    let mut v = local_maxima_ref(x);
    v.extend(local_minima_ref(x));
    v.sort_unstable();
    v
}

fn extrema_ref(x: &[f64], direction: f64) -> Vec<usize> {
    let mut out = Vec::new();
    // State: index where the current plateau begins after the last
    // non-zero diff in the sought direction, or None if not rising.
    let mut rise_start: Option<usize> = None;
    for i in 0..x.len().saturating_sub(1) {
        let d = (x[i + 1] - x[i]) * direction;
        if d > 0.0 {
            rise_start = Some(i + 1);
        } else if d < 0.0 {
            if let Some(s) = rise_start.take() {
                out.push(s);
            }
        } else if d != 0.0 || d.is_nan() {
            // NaN diff: neither rising nor falling; break any rise.
            rise_start = None;
        }
        // d == 0.0: plateau, keep the pending rise start.
    }
    out
}

/// Eq. (1) deviation objective with an explicit clamped-index loop.
pub fn deviation_from_local_mean_ref(x: &[f64], s: usize, w: usize) -> f64 {
    assert!(!x.is_empty(), "empty signal");
    let n = x.len() as i64;
    let half = (w / 2) as i64;
    let count = 2 * half + 1;
    let mut sum = 0.0;
    for off in -half..=half {
        let idx = (s as i64 + off).clamp(0, n - 1) as usize;
        sum += x[idx];
    }
    (x[s.min(x.len() - 1)] - sum / count as f64).abs()
}

/// Fine-grained calibration search: best extremum in
/// `[approx − before, approx + after]` by the Eq. (1) objective,
/// first-wins on ties. Returns `(index, score)`.
pub fn calibrate_keystroke_ref(
    x: &[f64],
    approx: usize,
    before: usize,
    after: usize,
    w: usize,
) -> Option<(usize, f64)> {
    if x.is_empty() {
        return None;
    }
    let lo = approx.saturating_sub(before);
    let hi = approx.saturating_add(after).min(x.len() - 1);
    let mut best: Option<(usize, f64)> = None;
    for s in local_extrema_ref(x) {
        if s < lo || s > hi {
            continue;
        }
        let score = deviation_from_local_mean_ref(x, s, w);
        if best.is_none_or(|(_, b)| score > b) {
            best = Some((s, score));
        }
    }
    best
}

/// Linear-interpolation resampling with the interpolant written in
/// point-slope form.
pub fn resample_linear_ref(x: &[f64], src_rate: f64, dst_rate: f64) -> Vec<f64> {
    assert!(src_rate > 0.0 && src_rate.is_finite(), "bad src_rate");
    assert!(dst_rate > 0.0 && dst_rate.is_finite(), "bad dst_rate");
    if x.is_empty() {
        return Vec::new();
    }
    // Mirror the optimized kernel's documented identity shortcut.
    if (src_rate - dst_rate).abs() < f64::EPSILON {
        return x.to_vec();
    }
    let n = x.len();
    let out_len = ((n as f64) * dst_rate / src_rate).round().max(1.0) as usize;
    (0..out_len)
        .map(|i| {
            let pos = i as f64 * (src_rate / dst_rate);
            let i0 = pos.floor() as usize;
            if i0 + 1 >= n {
                x[n - 1]
            } else {
                x[i0] + (pos - i0 as f64) * (x[i0 + 1] - x[i0])
            }
        })
        .collect()
}

/// Index mapping between sampling rates.
pub fn map_index_ref(idx: usize, src_rate: f64, dst_rate: f64) -> usize {
    assert!(src_rate > 0.0 && src_rate.is_finite(), "bad src_rate");
    assert!(dst_rate > 0.0 && dst_rate.is_finite(), "bad dst_rate");
    ((idx as f64) * dst_rate / src_rate).round() as usize
}

fn kahan_sum(x: &[f64]) -> f64 {
    let mut sum = 0.0_f64;
    let mut c = 0.0_f64;
    for &v in x {
        let y = v - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Mean removal with compensated summation.
pub fn remove_mean_ref(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let m = kahan_sum(x) / x.len() as f64;
    x.iter().map(|v| v - m).collect()
}

/// Z-normalization with compensated sums; signals with standard
/// deviation below `1e-12` are mean-removed only (the kernel's
/// documented degenerate-variance rule).
pub fn zscore_ref(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let n = x.len() as f64;
    let mean = kahan_sum(x) / n;
    let dev: Vec<f64> = x.iter().map(|v| (v - mean) * (v - mean)).collect();
    let sd = (kahan_sum(&dev) / n).sqrt();
    if sd < 1e-12 {
        return x.iter().map(|v| v - mean).collect();
    }
    x.iter().map(|v| (v - mean) / sd).collect()
}

/// Min-max rescaling into `[0, 1]`; spans below `1e-12` map to zeros
/// (the kernel's documented constant-signal rule).
pub fn min_max_ref(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let lo = x.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi - lo < 1e-12 {
        return vec![0.0; x.len()];
    }
    x.iter().map(|v| (v - lo) / (hi - lo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_ref_matches_hand_values() {
        assert_eq!(median_of_ref(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of_ref(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        let y = median_filter_ref(&[1.0, 100.0, 1.0, 1.0], 3);
        assert_eq!(y, vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn savgol_ref_reproduces_published_quadratic_kernel() {
        // Savitzky & Golay 1964, window 5 order 2: (-3, 12, 17, 12, -3)/35.
        let c = savgol_coeffs_ref(5, 2);
        let expected = [-3.0, 12.0, 17.0, 12.0, -3.0].map(|v| v / 35.0);
        for (a, b) in c.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12, "{c:?}");
        }
    }

    #[test]
    fn trend_ref_of_ramp_is_ramp() {
        let y: Vec<f64> = (0..40).map(|i| 0.5 * i as f64 - 3.0).collect();
        let t = trend_ref(&y, 200.0);
        for (a, b) in y.iter().zip(&t) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn linear_fit_ref_recovers_exact_line() {
        let y: Vec<f64> = (0..25).map(|i| 2.0 - 0.25 * i as f64).collect();
        let fit = linear_fit_ref(&y);
        for (a, b) in y.iter().zip(&fit) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn extrema_ref_handles_plateaus_and_endpoints() {
        let x = [0.0, 2.0, 2.0, 2.0, 0.0];
        assert_eq!(local_maxima_ref(&x), vec![1]);
        assert!(local_minima_ref(&x).is_empty());
        let mono = [0.0, 1.0, 2.0, 3.0];
        assert!(local_extrema_ref(&mono).is_empty());
    }

    #[test]
    fn energy_ref_hand_values() {
        assert_eq!(
            short_time_energy_ref(&[1.0, 1.0, 2.0, 2.0], 2, 2),
            vec![2.0, 8.0]
        );
        assert_eq!(energy_around_ref(&[1.0; 10], 0, 4), 4.0);
    }
}
