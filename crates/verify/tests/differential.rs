//! Differential property tests: every optimized DSP kernel must agree
//! with its deliberately naive reference implementation from
//! [`p2auth_verify::oracle`] on adversarial random inputs.
//!
//! Case count scales with the standard `PROPTEST_CASES` environment
//! variable (CI runs 1000 per kernel); on failure proptest prints the
//! minimal counterexample, which becomes a committed regression. The
//! same comparisons also run dependency-free via
//! `p2auth_verify::run_suite` (the `oracle_suite` binary, seedable via
//! `P2AUTH_ORACLE_SEED`) so this coverage exists even where proptest
//! cannot be built.

use p2auth_dsp::detrend::{detrend, trend};
use p2auth_dsp::energy::{energy_around, half_mean_energy_threshold, short_time_energy};
use p2auth_dsp::median::{median_filter, median_of};
use p2auth_dsp::normalize::{min_max, remove_mean, zscore};
use p2auth_dsp::peaks::{
    calibrate_keystroke_asym, deviation_from_local_mean, local_extrema, local_maxima, local_minima,
};
use p2auth_dsp::resample::{map_index, resample_linear};
use p2auth_dsp::savgol::{savgol_coeffs, savgol_filter};
use p2auth_dsp::stats::quantile;
use p2auth_verify::oracle;
use proptest::prelude::*;

/// Adversarial signal shapes: smooth ranges, constants, near-constants,
/// impulses, and extreme magnitudes, at lengths from empty upward.
fn signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop_oneof![
        4 => prop::collection::vec(-100.0_f64..100.0, 0..max_len),
        1 => (0..max_len, -5.0_f64..5.0).prop_map(|(n, c)| vec![c; n]),
        1 => (1..max_len, -5.0_f64..5.0)
            .prop_map(|(n, c)| (0..n).map(|i| c + 1e-9 * i as f64).collect()),
        1 => (1..max_len, 0..max_len)
            .prop_map(|(n, k)| (0..n).map(|i| if i == k % n { 1e6 } else { 0.0 }).collect()),
        1 => prop::collection::vec(-1e12_f64..1e12, 0..max_len),
    ]
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol || (a.is_nan() && b.is_nan())
}

fn slices_close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| close(*x, *y, tol))
}

fn scale_of(x: &[f64]) -> f64 {
    x.iter()
        .filter(|v| v.is_finite())
        .fold(1.0_f64, |m, v| m.max(v.abs()))
}

proptest! {
    // ---- median ----------------------------------------------------
    #[test]
    fn median_filter_matches_oracle(x in signal(128), half in 0_usize..6) {
        let window = 2 * half + 1;
        let got = median_filter(&x, window);
        let want = oracle::median_filter_ref(&x, window);
        prop_assert!(slices_close(&got, &want, 0.0), "median w={window}");
    }

    #[test]
    fn median_of_matches_oracle(x in signal(64)) {
        prop_assume!(!x.is_empty());
        let mut buf = x.clone();
        let got = median_of(&mut buf);
        let want = oracle::median_of_ref(&x);
        prop_assert!(close(got, want, 0.0));
    }

    #[test]
    fn quantile_matches_oracle(x in signal(64), q in 0.0_f64..=1.0) {
        prop_assume!(!x.is_empty());
        let got = quantile(&x, q);
        let want = {
            let mut v = x.clone();
            v.sort_by(f64::total_cmp);
            let pos = q * (v.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            v[lo] + (v[hi] - v[lo]) * (pos - lo as f64)
        };
        prop_assert!(close(got, want, 1e-12 * scale_of(&x)));
    }

    // ---- savgol ----------------------------------------------------
    #[test]
    fn savgol_coeffs_match_oracle(half in 1_usize..16, order in 1_usize..6) {
        let window = 2 * half + 1;
        prop_assume!(order < window);
        let got = savgol_coeffs(window, order);
        let want = oracle::savgol_coeffs_ref(window, order);
        prop_assert!(slices_close(&got, &want, 1e-6), "w={window} o={order}");
    }

    #[test]
    fn savgol_filter_matches_oracle(x in signal(128), half in 1_usize..8, order in 1_usize..4) {
        let window = 2 * half + 1;
        prop_assume!(order < window);
        let got = savgol_filter(&x, window, order);
        let want = oracle::savgol_filter_ref(&x, window, order);
        let tol = 1e-6 * scale_of(&x) * window as f64;
        prop_assert!(slices_close(&got, &want, tol), "w={window} o={order}");
    }

    // ---- detrend ---------------------------------------------------
    #[test]
    fn trend_matches_oracle(x in signal(96), lambda in 0.0_f64..1000.0) {
        let got = trend(&x, lambda);
        let want = oracle::trend_ref(&x, lambda);
        let kappa = 1.0 + 16.0 * lambda * lambda;
        let tol = (1e-9 * kappa).max(1e-9) * scale_of(&x) * (x.len().max(1) as f64).sqrt();
        prop_assert!(slices_close(&got, &want, tol), "λ={lambda}");
    }

    #[test]
    fn detrend_matches_oracle(x in signal(96), lambda in 0.0_f64..500.0) {
        let got = detrend(&x, lambda);
        let want = oracle::detrend_ref(&x, lambda);
        let kappa = 1.0 + 16.0 * lambda * lambda;
        let tol = (1e-9 * kappa).max(1e-9) * scale_of(&x) * (x.len().max(1) as f64).sqrt();
        prop_assert!(slices_close(&got, &want, tol));
    }

    #[test]
    fn extreme_lambda_trend_is_finite(x in signal(64), exp in 4_u32..154) {
        prop_assume!(x.iter().all(|v| v.is_finite()));
        let lambda = 10.0_f64.powi(exp as i32);
        let t = trend(&x, lambda);
        prop_assert_eq!(t.len(), x.len());
        prop_assert!(t.iter().all(|v| v.is_finite()), "λ=1e{exp}");
    }

    // ---- energy ----------------------------------------------------
    #[test]
    fn short_time_energy_matches_oracle(x in signal(128), window in 1_usize..32, hop in 1_usize..16) {
        let got = short_time_energy(&x, window, hop);
        let want = oracle::short_time_energy_ref(&x, window, hop);
        let tol = 1e-9 * scale_of(&x) * scale_of(&x) * window as f64;
        prop_assert!(slices_close(&got, &want, tol));
    }

    #[test]
    fn energy_around_matches_oracle(x in signal(128), center in 0_usize..160, window in 1_usize..48) {
        let got = energy_around(&x, center, window);
        let want = oracle::energy_around_ref(&x, center, window);
        let tol = 1e-9 * scale_of(&x) * scale_of(&x) * window as f64;
        prop_assert!(close(got, want, tol));
    }

    #[test]
    fn energy_threshold_matches_oracle(x in signal(128), window in 1_usize..32) {
        let got = half_mean_energy_threshold(&x, window);
        let want = oracle::half_mean_energy_threshold_ref(&x, window);
        let tol = 1e-9 * scale_of(&x) * scale_of(&x) * window as f64;
        prop_assert!(close(got, want, tol));
    }

    // ---- peaks -----------------------------------------------------
    #[test]
    fn extrema_match_oracle(x in signal(96)) {
        prop_assert_eq!(local_maxima(&x), oracle::local_maxima_ref(&x));
        prop_assert_eq!(local_minima(&x), oracle::local_minima_ref(&x));
        prop_assert_eq!(local_extrema(&x), oracle::local_extrema_ref(&x));
    }

    #[test]
    fn deviation_matches_oracle(x in signal(96), raw_s in 0_usize..96, w in 1_usize..40) {
        if x.is_empty() {
            return Ok(());
        }
        let s = raw_s % x.len();
        let got = deviation_from_local_mean(&x, s, w);
        let want = oracle::deviation_from_local_mean_ref(&x, s, w);
        prop_assert!(close(got, want, 1e-9 * scale_of(&x)));
    }

    #[test]
    fn calibration_matches_oracle(
        x in signal(128),
        approx in 0_usize..128,
        before in 0_usize..32,
        after in 0_usize..32,
        w in 1_usize..40,
    ) {
        let got = calibrate_keystroke_asym(&x, approx, before, after, w);
        let want = oracle::calibrate_keystroke_ref(&x, approx, before, after, w);
        match (got, want) {
            (None, None) => {}
            (Some(g), Some((wi, ws))) => {
                prop_assert_eq!(g.index, wi);
                prop_assert!(close(g.score, ws, 1e-9 * scale_of(&x)));
            }
            (g, w) => prop_assert!(false, "impl {g:?} vs oracle {w:?}"),
        }
    }

    // ---- resample --------------------------------------------------
    #[test]
    fn resample_matches_oracle(x in signal(128), src in 1.0_f64..500.0, dst in 1.0_f64..500.0) {
        let got = resample_linear(&x, src, dst);
        let want = oracle::resample_linear_ref(&x, src, dst);
        prop_assert!(slices_close(&got, &want, 1e-9 * scale_of(&x)));
    }

    #[test]
    fn map_index_matches_oracle(idx in 0_usize..10_000, src in 1.0_f64..500.0, dst in 1.0_f64..500.0) {
        prop_assert_eq!(map_index(idx, src, dst), oracle::map_index_ref(idx, src, dst));
    }

    // ---- normalize -------------------------------------------------
    #[test]
    fn normalize_matches_oracle(x in signal(128)) {
        let scale = scale_of(&x);
        let mut rm = x.clone();
        remove_mean(&mut rm);
        let n = x.len().max(1) as f64;
        let mean_gap = 4.0 * n * f64::EPSILON * scale;
        prop_assert!(slices_close(&rm, &oracle::remove_mean_ref(&x), mean_gap));
        prop_assert!(slices_close(&min_max(&x), &oracle::min_max_ref(&x), 1e-12));
        // Skip zscore in the ambiguous degenerate-variance band where
        // the impl (plain sum) and oracle (Kahan) may branch apart.
        let sd = {
            let m = x.iter().sum::<f64>() / n;
            (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n).sqrt()
        };
        if !(1e-13..=1e-11).contains(&sd) {
            let tol = 1e-9 + mean_gap / sd.max(1e-12);
            prop_assert!(slices_close(&zscore(&x), &oracle::zscore_ref(&x), tol));
        }
    }
}

/// The dependency-free suite must stay clean under the proptest runner
/// too (belt and braces: CI runs it standalone with a random seed).
#[test]
fn bundled_suite_is_clean() {
    let report = p2auth_verify::run_suite(p2auth_verify::DEFAULT_SEED, 100);
    assert!(report.is_clean(), "{}", report.summary());
}
