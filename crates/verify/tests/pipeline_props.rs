//! Pipeline-level properties over the `p2auth-core` public API: the
//! preprocessing → case-identification → segmentation → fusion chain
//! must never panic on arbitrary well-typed sessions, and segmentation
//! outputs must be invariant to trailing channel padding that lies
//! outside the cropped span.

use p2auth_core::enroll::fusion::{fuse, fuse_aligned};
use p2auth_core::enroll::segmentation::{full_waveform, segment};
use p2auth_core::preprocess::{case_id, preprocess};
use p2auth_core::{
    ChannelInfo, HandMode, P2AuthConfig, Pin, Placement, Recording, UserId, Wavelength,
};
use proptest::prelude::*;

fn channel(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0_f64..50.0, len..=len)
}

fn session() -> impl Strategy<Value = Recording> {
    (400_usize..700, 1_usize..4, any::<bool>())
        .prop_flat_map(|(n, ch, one_handed)| {
            (
                prop::collection::vec(channel(n), ch..=ch),
                prop::collection::vec(10_usize..n - 10, 4..=4),
                Just(one_handed),
            )
        })
        .prop_map(|(ppg, mut times, one_handed)| {
            times.sort_unstable();
            let info = ChannelInfo {
                wavelength: Wavelength::Infrared,
                placement: Placement::Radial,
            };
            Recording {
                user: UserId(0),
                sample_rate: 100.0,
                channels: vec![info; ppg.len()],
                ppg,
                accel: None,
                pin_entered: Pin::new("1628").expect("static PIN"),
                reported_key_times: times.clone(),
                true_key_times: times,
                watch_hand: vec![true; 4],
                hand_mode: if one_handed {
                    HandMode::OneHanded
                } else {
                    HandMode::TwoHanded
                },
            }
        })
}

proptest! {
    /// The full preprocessing chain is total over well-typed sessions:
    /// every outcome is a value or a typed error, never a panic.
    #[test]
    fn preprocessing_chain_never_panics(rec in session(), window in 1_usize..120, margin in 0_usize..80) {
        let cfg = P2AuthConfig::default();
        prop_assert!(rec.validate().is_ok());
        let Ok(pre) = preprocess(&cfg, &rec) else {
            return Ok(()); // typed error is an acceptable outcome
        };
        let report = case_id::identify_case(
            &cfg,
            &pre.filtered,
            &pre.calibrated_times,
            pre.sample_rate,
        );
        prop_assert_eq!(report.present.len(), pre.calibrated_times.len());

        let mut segments = Vec::new();
        for &t in &pre.calibrated_times {
            match segment(&pre.filtered, t, window) {
                Ok(s) => {
                    prop_assert_eq!(s.len(), window);
                    segments.push(s);
                }
                Err(_) => return Ok(()),
            }
        }
        if let Ok(fw) = full_waveform(&pre.filtered, &pre.calibrated_times, margin, 256) {
            prop_assert_eq!(fw.len(), 256);
        }
        if let Some(f) = fuse(&segments) {
            prop_assert_eq!(f.len(), window);
        }
        if let Some(f) = fuse_aligned(&segments, 4) {
            prop_assert_eq!(f.len(), window);
        }
    }

    /// Trailing samples appended beyond the cropped span must not
    /// change the cut windows: segmentation reads only the span.
    #[test]
    fn segmentation_invariant_to_trailing_padding(
        x in channel(500),
        center in 100_usize..300,
        window in 1_usize..100,
        pad in 1_usize..64,
    ) {
        let mut padded = x.clone();
        padded.extend(std::iter::repeat_n(1e6, pad));
        let a = segment(&[x], center, window).expect("valid");
        let b = segment(&[padded], center, window).expect("valid");
        prop_assert_eq!(a.channel(0), b.channel(0));
    }

    /// Same invariance for the full-waveform crop when the span (plus
    /// margin) ends before the original signal does.
    #[test]
    fn full_waveform_invariant_to_trailing_padding(
        x in channel(500),
        t0 in 50_usize..150,
        gap in 40_usize..80,
        margin in 0_usize..60,
        pad in 1_usize..64,
    ) {
        let times = vec![t0, t0 + gap, t0 + 2 * gap];
        prop_assert!(times[2] + margin < 500);
        let mut padded = x.clone();
        padded.extend(std::iter::repeat_n(1e6, pad));
        let a = full_waveform(&[x], &times, margin, 128).expect("valid");
        let b = full_waveform(&[padded], &times, margin, 128).expect("valid");
        prop_assert_eq!(a.channel(0), b.channel(0));
    }

    /// Ragged channels (one cut short, e.g. by a degraded link) must
    /// degrade into well-formed equal-length windows, never a panic.
    #[test]
    fn ragged_channels_never_panic(
        long in channel(400),
        short_len in 1_usize..400,
        center in 0_usize..450,
        window in 1_usize..120,
    ) {
        let short: Vec<f64> = long.iter().copied().take(short_len).collect();
        let s = segment(&[long.clone(), short.clone()], center, window).expect("non-empty channels");
        prop_assert_eq!(s.num_channels(), 2);
        prop_assert_eq!(s.len(), window);
        let times = vec![50, 180, 320];
        let fw = full_waveform(&[long, short], &times, 30, 200).expect("non-empty channels");
        prop_assert_eq!(fw.num_channels(), 2);
        prop_assert_eq!(fw.len(), 200);
    }
}
