//! Attack evaluation over a whole cohort: random attacks (attackers
//! typing the victim's PIN in their own style) and emulating attacks
//! (imitated rhythm and hand split), reported per victim — the paper's
//! §V-C "performance against two types of attacks".
//!
//! Run with `cargo run --release --example attack_evaluation [users]`.

use p2auth::core::{P2Auth, P2AuthConfig, Pin};
use p2auth::ml::metrics::ConfusionCounts;
use p2auth::sim::{HandMode, Population, PopulationConfig, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let users: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let pin = Pin::new("5094")?;
    let session = SessionConfig::default();
    let system = P2Auth::new(P2AuthConfig::default());

    let mut totals = ConfusionCounts::default();
    println!("victim  accuracy  trr_random  trr_emulating");
    for victim in 0..pop.num_users() {
        let enroll: Vec<_> = (0..9)
            .map(|i| pop.record_entry(victim, &pin, HandMode::OneHanded, &session, i))
            .collect();
        let third: Vec<_> = (0..60)
            .map(|i| {
                // Third parties: everyone except the victim and the two
                // designated attackers.
                let mut u = (victim + 3 + i % (pop.num_users() - 3)) % pop.num_users();
                if u == victim {
                    u = (u + 3) % pop.num_users();
                }
                pop.record_entry(u, &pin, HandMode::OneHanded, &session, 2000 + i as u64)
            })
            .collect();
        let profile = system.enroll(&pin, &enroll, &third)?;

        let mut counts = ConfusionCounts::default();
        for n in 0..10_u64 {
            let a = pop.record_entry(victim, &pin, HandMode::OneHanded, &session, 500 + n);
            counts.record(system.authenticate(&profile, &pin, &a)?.accepted, true);
        }
        let mut ra = ConfusionCounts::default();
        let mut ea = ConfusionCounts::default();
        for n in 0..10_u64 {
            let attacker = (victim + 1 + (n as usize % 2)) % pop.num_users();
            let r = pop.record_entry(attacker, &pin, HandMode::OneHanded, &session, 700 + n);
            ra.record(system.authenticate(&profile, &pin, &r)?.accepted, false);
            let e = pop.record_emulating_attack(
                attacker,
                victim,
                &pin,
                HandMode::OneHanded,
                &session,
                n,
            );
            ea.record(system.authenticate(&profile, &pin, &e)?.accepted, false);
        }
        println!(
            "{victim:>6}  {:>8.2}  {:>10.2}  {:>13.2}",
            counts.authentication_accuracy().unwrap_or(0.0),
            ra.true_rejection_rate().unwrap_or(0.0),
            ea.true_rejection_rate().unwrap_or(0.0),
        );
        totals.merge(&counts);
        totals.merge(&ra);
        totals.merge(&ea);
    }
    println!(
        "\noverall: accuracy {:.3}, TRR {:.3} over {} decisions",
        totals.authentication_accuracy().unwrap_or(0.0),
        totals.true_rejection_rate().unwrap_or(0.0),
        totals.total()
    );
    Ok(())
}
