//! No-PIN unlocking (paper §IV-B 2.6): the user never sets a fixed
//! PIN; whatever digits they type, the per-key keystroke-induced PPG
//! patterns alone decide — "overcoming the problem of PIN losing and
//! effectively preventing emulating attacks".
//!
//! Run with `cargo run --release --example no_pin_unlock`.

use p2auth::core::{P2Auth, P2AuthConfig, Pin, PinPolicy};
use p2auth::sim::{HandMode, Population, PopulationConfig, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pop = Population::generate(&PopulationConfig {
        num_users: 8,
        seed: 11,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let config = P2AuthConfig {
        pin_policy: PinPolicy::NoPinAllowed,
        ..P2AuthConfig::default()
    };
    let system = P2Auth::new(config);

    // Enrollment without a fixed PIN: the user types *random* digit
    // sequences; every detected keystroke trains that digit's model.
    let enroll: Vec<_> = (0..14)
        .map(|i| pop.record_random_entry(0, HandMode::OneHanded, &session, i))
        .collect();
    let third_party: Vec<_> = (0..50)
        .map(|i| {
            pop.record_random_entry(1 + (i % 7), HandMode::OneHanded, &session, 900 + i as u64)
        })
        .collect();
    let profile = system.enroll_no_pin(&enroll, &third_party)?;
    println!(
        "enrolled without a PIN; per-key models for digits {:?}",
        profile.enrolled_keys()
    );

    // The user unlocks by typing anything composed of enrolled digits.
    let mut accepted = 0;
    let trials = 10;
    for n in 0..trials {
        let attempt = pop.record_random_entry(0, HandMode::OneHanded, &session, 400 + n);
        let d = system.authenticate_no_pin(&profile, &attempt)?;
        if d.accepted {
            accepted += 1;
        }
    }
    println!("legitimate random entries accepted: {accepted}/{trials}");

    // An attacker who watched the user type a sequence gains nothing:
    // there is no PIN to steal, and their keystroke patterns differ.
    let observed = Pin::new("7412")?;
    let mut rejected = 0;
    for n in 0..trials {
        let attack = pop.record_emulating_attack(2, 0, &observed, HandMode::OneHanded, &session, n);
        let d = system.authenticate_no_pin(&profile, &attack)?;
        if !d.accepted {
            rejected += 1;
        }
    }
    println!("emulating attacks rejected:         {rejected}/{trials}");
    Ok(())
}
