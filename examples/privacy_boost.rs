//! Privacy boost (paper §IV-B 2.2, Eq. (4)): fuse the four
//! single-keystroke waveforms additively so the system never has to
//! match — or store decision state about — any individual keystroke
//! waveform. "A single theft of data entered by a user with one hand
//! results in four keystrokes that can no longer be used"; fusion
//! trades a little accuracy for that protection.
//!
//! Run with `cargo run --release --example privacy_boost`.

use p2auth::core::{P2Auth, P2AuthConfig, Pin};
use p2auth::sim::{HandMode, Population, PopulationConfig, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pop = Population::generate(&PopulationConfig {
        num_users: 10,
        seed: 77,
        ..Default::default()
    });
    let pin = Pin::new("3570")?;
    let session = SessionConfig::default();

    let enroll: Vec<_> = (0..9)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..60)
        .map(|i| {
            pop.record_entry(
                1 + (i % 9),
                &pin,
                HandMode::OneHanded,
                &session,
                3000 + i as u64,
            )
        })
        .collect();

    // Enroll twice from the same data: plain and with the boost.
    let plain = P2Auth::new(P2AuthConfig::default());
    let boosted = P2Auth::new(P2AuthConfig {
        privacy_boost: true,
        ..P2AuthConfig::default()
    });
    let plain_profile = plain.enroll(&pin, &enroll, &third)?;
    let boost_profile = boosted.enroll(&pin, &enroll, &third)?;
    println!("boost model trained: {}", boost_profile.has_boost_model());

    let trials = 12;
    let mut accepted = [0_u32; 2];
    let mut rejected = [0_u32; 2];
    for n in 0..trials {
        let legit = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 600 + n);
        if plain.authenticate(&plain_profile, &pin, &legit)?.accepted {
            accepted[0] += 1;
        }
        if boosted.authenticate(&boost_profile, &pin, &legit)?.accepted {
            accepted[1] += 1;
        }
        let attack = pop.record_emulating_attack(4, 0, &pin, HandMode::OneHanded, &session, n);
        if !plain.authenticate(&plain_profile, &pin, &attack)?.accepted {
            rejected[0] += 1;
        }
        if !boosted
            .authenticate(&boost_profile, &pin, &attack)?
            .accepted
        {
            rejected[1] += 1;
        }
    }
    println!(
        "plain:  accuracy {}/{trials}, attacks rejected {}/{trials}",
        accepted[0], rejected[0]
    );
    println!(
        "boost:  accuracy {}/{trials}, attacks rejected {}/{trials}",
        accepted[1], rejected[1]
    );
    println!("(the paper's trade-off: boost sacrifices some accuracy for biometric privacy)");
    Ok(())
}
