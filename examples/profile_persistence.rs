//! Profile persistence: a deployed P²Auth stores the enrolled models on
//! the device and reloads them at unlock time instead of re-enrolling.
//! `UserProfile` implements Serde's traits, so any format works; this
//! example uses JSON.
//!
//! Run with `cargo run --release --example profile_persistence`.

use p2auth::core::{P2Auth, P2AuthConfig, Pin, UserProfile};
use p2auth::sim::{HandMode, Population, PopulationConfig, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pop = Population::generate(&PopulationConfig {
        num_users: 8,
        seed: 21,
        ..Default::default()
    });
    let pin = Pin::new("1628")?;
    let session = SessionConfig::default();
    let system = P2Auth::new(P2AuthConfig::default());

    // Enroll once...
    let enroll: Vec<_> = (0..9)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..40)
        .map(|i| {
            pop.record_entry(
                1 + (i % 7),
                &pin,
                HandMode::OneHanded,
                &session,
                700 + i as u64,
            )
        })
        .collect();
    let profile = system.enroll(&pin, &enroll, &third)?;

    // ...persist to disk...
    let path = std::env::temp_dir().join("p2auth_profile.json");
    let json = serde_json::to_vec(&profile)?;
    std::fs::write(&path, &json)?;
    println!(
        "profile stored at {} ({} KiB)",
        path.display(),
        json.len() / 1024
    );

    // ...and reload in a "later session".
    let restored: UserProfile = serde_json::from_slice(&std::fs::read(&path)?)?;
    let attempt = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 99);
    let before = system.authenticate(&profile, &pin, &attempt)?;
    let after = system.authenticate(&restored, &pin, &attempt)?;
    println!(
        "fresh profile: accepted={} score={:+.4}",
        before.accepted, before.score
    );
    println!(
        "restored:      accepted={} score={:+.4} (identical: {})",
        after.accepted,
        after.score,
        before == after
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
