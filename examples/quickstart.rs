//! Quickstart: enroll one user and authenticate them.
//!
//! Run with `cargo run --release --example quickstart`.

use p2auth::core::{P2Auth, P2AuthConfig, Pin};
use p2auth::sim::{HandMode, Population, PopulationConfig, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small simulated cohort stands in for the paper's volunteers;
    // user 0 is "us", the others supply third-party training data.
    let pop = Population::generate(&PopulationConfig {
        num_users: 8,
        seed: 42,
        ..Default::default()
    });
    let pin = Pin::new("1628")?;
    let session = SessionConfig::default();

    // Enrollment: the paper asks the user to enter the PIN ~9 times.
    let enroll: Vec<_> = (0..9)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    // Third-party pool: other people's entries stored for training.
    let third_party: Vec<_> = (0..40)
        .map(|i| {
            pop.record_entry(
                1 + (i % 7),
                &pin,
                HandMode::OneHanded,
                &session,
                1000 + i as u64,
            )
        })
        .collect();

    let system = P2Auth::new(P2AuthConfig::default());
    let profile = system.enroll(&pin, &enroll, &third_party)?;
    println!(
        "enrolled: full-waveform model = {}, per-key models for digits {:?}",
        profile.has_full_model(),
        profile.enrolled_keys()
    );

    // A legitimate attempt.
    let attempt = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 99);
    let decision = system.authenticate(&profile, &pin, &attempt)?;
    println!(
        "legitimate attempt: accepted = {}, case = {:?}, score = {:+.3}",
        decision.accepted, decision.case, decision.score
    );

    // Someone else typing the same (stolen) PIN.
    let attack = pop.record_emulating_attack(3, 0, &pin, HandMode::OneHanded, &session, 7);
    let decision = system.authenticate(&profile, &pin, &attack)?;
    println!(
        "emulating attack:   accepted = {}, reason = {:?}, score = {:+.3}",
        decision.accepted, decision.reason, decision.score
    );

    // The wrong PIN never reaches the biometric stage.
    let wrong = Pin::new("0000")?;
    let typo = pop.record_entry(0, &wrong, HandMode::OneHanded, &session, 5);
    let decision = system.authenticate(&profile, &wrong, &typo)?;
    println!(
        "wrong PIN:          accepted = {}, reason = {:?}",
        decision.accepted, decision.reason
    );
    Ok(())
}
