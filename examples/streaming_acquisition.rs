//! Streaming acquisition: the full distributed chain of the paper's
//! prototype — the wearable packetizes its sensors, two links with
//! different delay characteristics carry data and key events, the host
//! reassembles a recording whose keystroke timestamps are only coarse,
//! and the pipeline's fine-grained calibration absorbs the damage.
//!
//! Run with `cargo run --release --example streaming_acquisition`.

use p2auth::core::preprocess::preprocess;
use p2auth::core::{P2Auth, P2AuthConfig, Pin};
use p2auth::device::clock::VirtualClock;
use p2auth::device::host::transmit;
use p2auth::device::{Link, LinkConfig, WearableDevice};
use p2auth::sim::{HandMode, Population, PopulationConfig, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pop = Population::generate(&PopulationConfig {
        num_users: 8,
        seed: 5,
        ..Default::default()
    });
    let pin = Pin::new("6938")?;
    let session = SessionConfig::default();

    // The device's phone clock is 2.3 s off with 120 ppm drift; the two
    // links have different latency/jitter (EVK path vs phone path).
    let device = WearableDevice::new(VirtualClock::new(2.3, 120.0));
    let mut data_link = Link::new(LinkConfig {
        base_delay_s: 0.010,
        jitter_s: 0.03,
        seed: 1,
    });
    let mut key_link = Link::new(LinkConfig {
        base_delay_s: 0.025,
        jitter_s: 0.09,
        seed: 2,
    });

    // Stream the enrollment and the attempt through the link.
    let mut enroll = Vec::new();
    for i in 0..9_u64 {
        let physical = pop.record_entry(0, &pin, HandMode::OneHanded, &session, i);
        enroll.push(transmit(&physical, &device, &mut data_link, &mut key_link)?);
    }
    let third: Vec<_> = (0..40)
        .map(|i| {
            let physical = pop.record_entry(
                1 + (i as usize % 7),
                &pin,
                HandMode::OneHanded,
                &session,
                800 + i,
            );
            transmit(&physical, &device, &mut data_link, &mut key_link).expect("transmit")
        })
        .collect();

    let physical = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 99);
    let attempt = transmit(&physical, &device, &mut data_link, &mut key_link)?;

    // Show what the link did to the timestamps and what calibration
    // recovers.
    let cfg = P2AuthConfig::default();
    let pre = preprocess(&cfg, &attempt)?;
    println!("ground-truth touches:  {:?}", attempt.true_key_times);
    println!(
        "host-reported times:   {:?}  (sample-count heuristic over the jittered link)",
        attempt.reported_key_times
    );
    println!(
        "calibrated times:      {:?}  (Eq. (1) extreme-point search)",
        pre.calibrated_times
    );

    // And the authentication still works end to end.
    let system = P2Auth::new(cfg);
    let profile = system.enroll(&pin, &enroll, &third)?;
    let decision = system.authenticate(&profile, &pin, &attempt)?;
    println!(
        "streamed attempt accepted: {} (score {:+.3})",
        decision.accepted, decision.score
    );
    Ok(())
}
