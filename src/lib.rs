//! # P²Auth — PIN + keystroke-induced PPG two-factor authentication
//!
//! Facade crate for the reproduction of *P²Auth: Two-Factor
//! Authentication Leveraging PIN and Keystroke-Induced PPG Measurements*
//! (Su et al., IEEE ICDCS 2023). It re-exports every subsystem so
//! examples and downstream users need a single dependency:
//!
//! * [`core`] — the authentication pipeline (the paper's contribution),
//! * [`sim`] — the physiological PPG/keystroke simulator standing in for
//!   the paper's wearable prototype and volunteer cohort,
//! * [`device`] — the virtual wearable acquisition link,
//! * [`dsp`], [`rocket`], [`ml`] — the signal-processing, MiniRocket and
//!   machine-learning substrates,
//! * [`baseline`] — the comparison methods from the paper's evaluation,
//! * [`server`] — the fleet-scale serving layer (sharded profile store,
//!   pooled session scheduler, admission control and load shedding).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or in short:
//!
//! ```
//! use p2auth::core::{P2Auth, P2AuthConfig};
//! use p2auth::sim::{Population, PopulationConfig, SessionConfig, HandMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Simulated cohort standing in for the paper's 15 volunteers.
//! let pop = Population::generate(&PopulationConfig { num_users: 3, seed: 7, ..Default::default() });
//! let pin = p2auth::core::Pin::new("1628")?;
//! let session = SessionConfig::default();
//!
//! // Collect enrollment recordings for user 0 and a third-party pool.
//! let mut recs = Vec::new();
//! for rep in 0..12 {
//!     recs.push(pop.record_entry(0, &pin, HandMode::OneHanded, &session, rep as u64));
//! }
//! let third_party: Vec<_> = (0..30)
//!     .map(|i| pop.record_entry(1 + (i % 2), &pin, HandMode::OneHanded, &session, 100 + i as u64))
//!     .collect();
//!
//! let system = P2Auth::new(P2AuthConfig::fast());
//! let profile = system.enroll(&pin, &recs, &third_party)?;
//! let attempt = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 999);
//! let decision = system.authenticate(&profile, &pin, &attempt)?;
//! println!("accepted: {}", decision.accepted);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use p2auth_baseline as baseline;
pub use p2auth_core as core;
pub use p2auth_device as device;
pub use p2auth_dsp as dsp;
pub use p2auth_ml as ml;
pub use p2auth_obs as obs;
pub use p2auth_par as par;
pub use p2auth_rocket as rocket;
pub use p2auth_server as server;
pub use p2auth_sim as sim;
