//! Integration tests over the experiment harness itself: the datasets
//! every figure is computed from must be deterministic, disjoint in
//! identity, and structurally consistent.

use p2auth::sim::{Population, PopulationConfig, SessionConfig};
use p2auth_bench::harness::{build_dataset, identity_split, paper_pins, ProtocolConfig};

fn pop() -> Population {
    Population::generate(&PopulationConfig {
        num_users: 15,
        ..Default::default()
    })
}

#[test]
fn datasets_are_deterministic() {
    let pop = pop();
    let pin = &paper_pins()[0];
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let a = build_dataset(&pop, 3, pin, &session, &proto);
    let b = build_dataset(&pop, 3, pin, &session, &proto);
    assert_eq!(a.enroll, b.enroll);
    assert_eq!(a.third_party, b.third_party);
    assert_eq!(a.ea_double2, b.ea_double2);
}

#[test]
fn protocol_counts_respected() {
    let pop = pop();
    let pin = &paper_pins()[1];
    let proto = ProtocolConfig {
        n_enroll: 7,
        n_third_party: 33,
        n_legit: 5,
        n_attacks: 9,
    };
    let data = build_dataset(&pop, 0, pin, &SessionConfig::default(), &proto);
    assert_eq!(data.enroll.len(), 7);
    assert_eq!(data.third_party.len(), 33);
    assert_eq!(data.legit_one.len(), 5);
    assert_eq!(data.legit_double3.len(), 5);
    assert_eq!(data.ra_one.len(), 9);
    assert_eq!(data.ea_double2.len(), 9);
}

#[test]
fn identity_roles_are_disjoint() {
    let pop = pop();
    let pin = &paper_pins()[0];
    let victim = 4;
    let (attackers, third_users) = identity_split(victim, pop.num_users());
    let data = build_dataset(
        &pop,
        victim,
        pin,
        &SessionConfig::default(),
        &ProtocolConfig::default(),
    );
    // Enrollment and legit traffic belong to the victim.
    for rec in data.enroll.iter().chain(&data.legit_one) {
        assert_eq!(rec.user.0 as usize, victim);
    }
    // Third-party recordings come only from third-party identities.
    for rec in &data.third_party {
        let u = rec.user.0 as usize;
        assert!(
            third_users.contains(&u),
            "third-party rec from non-third user {u}"
        );
        assert!(!attackers.contains(&u));
        assert_ne!(u, victim);
    }
    // Attack traffic comes only from attacker identities.
    for rec in data
        .ra_one
        .iter()
        .chain(&data.ea_one)
        .chain(&data.ea_double3)
    {
        let u = rec.user.0 as usize;
        assert!(attackers.contains(&u), "attack rec from non-attacker {u}");
    }
}

#[test]
fn double_cases_have_exact_watch_counts() {
    let pop = pop();
    let pin = &paper_pins()[2];
    let data = build_dataset(
        &pop,
        1,
        pin,
        &SessionConfig::default(),
        &ProtocolConfig::default(),
    );
    for rec in &data.legit_double3 {
        assert_eq!(rec.watch_hand.iter().filter(|&&b| b).count(), 3);
    }
    for rec in data.legit_double2.iter().chain(&data.ea_double2) {
        assert_eq!(rec.watch_hand.iter().filter(|&&b| b).count(), 2);
    }
}

#[test]
fn every_recording_validates() {
    let pop = pop();
    let pin = &paper_pins()[3];
    let data = build_dataset(
        &pop,
        2,
        pin,
        &SessionConfig::default(),
        &ProtocolConfig::default(),
    );
    let all = data
        .enroll
        .iter()
        .chain(&data.third_party)
        .chain(&data.legit_one)
        .chain(&data.legit_double3)
        .chain(&data.legit_double2)
        .chain(&data.ra_one)
        .chain(&data.ea_one)
        .chain(&data.ea_double3)
        .chain(&data.ea_double2);
    for rec in all {
        assert_eq!(rec.validate(), Ok(()));
    }
}
