//! Cross-crate integration tests: simulator → (virtual device link) →
//! authentication pipeline.

use p2auth::core::{HandMode, P2Auth, P2AuthConfig, Pin};
use p2auth::device::clock::VirtualClock;
use p2auth::device::host::transmit;
use p2auth::device::{Link, LinkConfig, WearableDevice};
use p2auth::sim::{Population, PopulationConfig, SessionConfig};

fn population(seed: u64) -> Population {
    Population::generate(&PopulationConfig {
        num_users: 8,
        seed,
        ..Default::default()
    })
}

#[test]
fn device_streamed_recordings_authenticate_like_direct_ones() {
    let pop = Population::generate(&PopulationConfig {
        num_users: 10,
        seed: 301,
        ..Default::default()
    });
    let pin = Pin::new("1628").unwrap();
    let session = SessionConfig::default();
    let system = P2Auth::new(P2AuthConfig::default());

    let device = WearableDevice::new(VirtualClock::new(1.0, 60.0));
    let mut data_link = Link::new(LinkConfig::default());
    let mut key_link = Link::new(LinkConfig {
        seed: 9,
        ..LinkConfig::default()
    });
    let mut stream = |rec: &p2auth::core::Recording| {
        transmit(rec, &device, &mut data_link, &mut key_link).unwrap()
    };

    // User 0 enrolls; user 3 attacks; the rest are third parties.
    let third_users = [1_usize, 2, 4, 5, 6, 7, 8, 9];
    let enroll: Vec<_> = (0..9)
        .map(|i| stream(&pop.record_entry(0, &pin, HandMode::OneHanded, &session, i)))
        .collect();
    let third: Vec<_> = (0..40)
        .map(|i| {
            let u = third_users[i as usize % third_users.len()];
            stream(&pop.record_entry(u, &pin, HandMode::OneHanded, &session, 500 + i))
        })
        .collect();
    let profile = system.enroll(&pin, &enroll, &third).unwrap();

    let mut ok = 0;
    for n in 0..6_u64 {
        let attempt = stream(&pop.record_entry(0, &pin, HandMode::OneHanded, &session, 900 + n));
        if system
            .authenticate(&profile, &pin, &attempt)
            .unwrap()
            .accepted
        {
            ok += 1;
        }
    }
    assert!(ok >= 4, "streamed legitimate attempts accepted {ok}/6");

    let mut rejected = 0;
    for n in 0..6_u64 {
        let attack =
            stream(&pop.record_emulating_attack(3, 0, &pin, HandMode::OneHanded, &session, n));
        if !system
            .authenticate(&profile, &pin, &attack)
            .unwrap()
            .accepted
        {
            rejected += 1;
        }
    }
    assert!(rejected >= 5, "streamed attacks rejected {rejected}/6");
}

#[test]
fn whole_flow_is_deterministic() {
    let pin = Pin::new("5094").unwrap();
    let session = SessionConfig::default();
    let run = || {
        let pop = population(302);
        let system = P2Auth::new(P2AuthConfig::fast());
        let enroll: Vec<_> = (0..6)
            .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
            .collect();
        let third: Vec<_> = (0..18)
            .map(|i| {
                pop.record_entry(
                    1 + (i as usize % 7),
                    &pin,
                    HandMode::OneHanded,
                    &session,
                    200 + i,
                )
            })
            .collect();
        let profile = system.enroll(&pin, &enroll, &third).unwrap();
        let attempt = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 999);
        system.authenticate(&profile, &pin, &attempt).unwrap().score
    };
    assert_eq!(run(), run(), "same seeds must give bit-identical decisions");
}

#[test]
fn profile_accepts_resampled_attempts() {
    // The profile is trained at 100 Hz; an attempt arriving at 50 Hz is
    // resampled internally rather than rejected.
    let pop = population(303);
    let pin = Pin::new("7412").unwrap();
    let session = SessionConfig::default();
    let system = P2Auth::new(P2AuthConfig::fast());
    let enroll: Vec<_> = (0..8)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..16)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % 7),
                &pin,
                HandMode::OneHanded,
                &session,
                600 + i,
            )
        })
        .collect();
    let profile = system.enroll(&pin, &enroll, &third).unwrap();
    let attempt = pop
        .record_entry(0, &pin, HandMode::OneHanded, &session, 77)
        .resample(50.0);
    let d = system.authenticate(&profile, &pin, &attempt).unwrap();
    // The decision completes without error; acceptance depends on how
    // much the decimation hurt, which is the subject of Fig. 16.
    assert!(d.score.is_finite());
}

#[test]
fn channel_count_mismatch_is_an_error_not_a_rejection() {
    let pop = population(304);
    let pin = Pin::new("3570").unwrap();
    let session = SessionConfig::default();
    let system = P2Auth::new(P2AuthConfig::fast());
    let enroll: Vec<_> = (0..6)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..12)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % 7),
                &pin,
                HandMode::OneHanded,
                &session,
                300 + i,
            )
        })
        .collect();
    let profile = system.enroll(&pin, &enroll, &third).unwrap();
    let attempt = pop
        .record_entry(0, &pin, HandMode::OneHanded, &session, 50)
        .select_channels(&[0, 1]);
    assert!(system.authenticate(&profile, &pin, &attempt).is_err());
}

#[test]
fn baselines_run_on_the_same_recordings() {
    use p2auth::baseline::accel_auth::{authenticate_accel, enroll_accel, AccelAuthConfig};
    use p2auth::baseline::manual::{authenticate_manual, enroll_manual, ManualConfig};
    use p2auth::rocket::MiniRocketConfig;

    let pop = population(305);
    let pin = Pin::new("6938").unwrap();
    let session = SessionConfig::default();
    let enroll: Vec<_> = (0..6)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..12)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % 7),
                &pin,
                HandMode::OneHanded,
                &session,
                400 + i,
            )
        })
        .collect();
    let attempt = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 88);

    let manual_cfg = ManualConfig::default();
    let mp = enroll_manual(&manual_cfg, &enroll).unwrap();
    let md = authenticate_manual(&manual_cfg, &mp, &attempt).unwrap();
    assert!(md.score.is_finite());

    let accel_cfg = AccelAuthConfig {
        rocket: MiniRocketConfig {
            num_features: 168,
            ..Default::default()
        },
        ..Default::default()
    };
    let ap = enroll_accel(&accel_cfg, &enroll, &third).unwrap();
    let (_, score) = authenticate_accel(&accel_cfg, &ap, &attempt).unwrap();
    assert!(score.is_finite());
}
